// stimulus_source.hpp — pluggable input seam for the conditioning platform.
//
// The paper's platform thesis is that the conditioning chain retargets by
// reconfiguration; the input side earns the same property here. A
// StimulusSource produces the (rate, temperature) pair for one analog tick
// on the channel's *global* tick axis — the same axis checkpoints resume on
// — so any producer can stand in for the synthetic MEMS environment:
//
//   * SyntheticSource — wraps a Profile pair; bit-identical to the
//     historical hard-wired path (same t = tick·dt arithmetic).
//   * RecordedSource  — replays a versioned, CRC-framed `.strace` binary
//     trace (captured field data, or a StimulusRecorder probe capture).
//     Exact integer indexing when the trace rate matches the simulation
//     rate makes record → replay bit-exact.
//   * QueueSource     — bounded push-fed buffer with an explicit underrun
//     policy: the ingestion seam a live data feed (ascp_serve) pushes into.
//
// Sources are checkpointable: serialize_state() rides inside the channel
// checkpoint, so a mid-replay snapshot resumes at the exact trace cursor.
//
// The output side gets the mirror seam: Probe taps at named chain points
// (stimulus, post-MEMS, post-AFE, post-ADC, decimated output). Probes are
// read-only observers with the obs-layer discipline: the numeric output is
// bit-identical with a probe attached or not, and a detached probe costs
// nothing (no task is even scheduled).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/state_archive.hpp"
#include "sensor/environment.hpp"

namespace ascp::sensor {

/// One analog tick's environment: what the MEMS element experiences.
struct StimulusSample {
  double rate_dps = 0.0;  ///< angular rate [°/s]
  double temp_c = 25.0;   ///< ambient temperature [°C]
};

enum class StimulusKind : std::uint32_t { Synthetic = 0, Recorded = 1, Queue = 2 };

const char* stimulus_kind_name(StimulusKind k);

class StimulusSource {
 public:
  virtual ~StimulusSource() = default;

  virtual StimulusKind kind() const = 0;

  /// Evaluate the stimulus for global base tick `tick`. Deterministic: the
  /// same tick sequence must yield the same sample sequence (the channel
  /// determinism contract extends to sources). Sequential consumers
  /// (QueueSource) may ignore the tick value.
  virtual StimulusSample sample(long tick) = 0;

  /// Checkpoint path: rides inside the owning channel's archive so a
  /// mid-replay snapshot resumes at the exact cursor. Stateless sources
  /// still frame an (empty) section for format stability.
  virtual void serialize_state(StateArchive& ar) = 0;

  /// Replay/ingest position for tools (checkpoint_tool inspect): the index
  /// of the last sample consumed, −1 when not meaningful (synthetic).
  virtual std::int64_t cursor() const { return -1; }

  /// Times the source was asked for data it did not have (past trace end,
  /// empty queue). Stays 0 for synthetic sources.
  virtual std::uint64_t underruns() const { return 0; }
};

// ---- synthetic (Profile-backed) --------------------------------------------

class SyntheticSource final : public StimulusSource {
 public:
  /// `tick_rate_hz` is the analog sample rate the source is evaluated at;
  /// `origin_tick` maps profile t = 0 onto that global tick (0 = the global
  /// axis itself, as the fleet engine uses it).
  SyntheticSource(Profile rate, Profile temp, double tick_rate_hz, long origin_tick = 0)
      : rate_(std::move(rate)),
        temp_(std::move(temp)),
        dt_(1.0 / tick_rate_hz),
        origin_(origin_tick) {}

  StimulusKind kind() const override { return StimulusKind::Synthetic; }

  StimulusSample sample(long tick) override {
    // Exactly the historical arithmetic: static_cast<double>(ticks) * dt,
    // with the origin subtracted in exact integer arithmetic first.
    const double t = static_cast<double>(tick - origin_) * dt_;
    return {rate_.at(t), temp_.at(t)};
  }

  void serialize_state(StateArchive& ar) override {
    // Profiles are (re)constructed from config; nothing dynamic travels.
    ar.begin_section("SSYN");
    ar.end_section();
  }

 private:
  Profile rate_, temp_;
  double dt_;
  long origin_;
};

// ---- recorded traces (.strace) ---------------------------------------------

/// How RecordedSource fills the gaps when the simulation rate differs from
/// the trace's sample rate.
enum class TraceInterp : std::uint32_t {
  Hold = 0,    ///< zero-order hold: the sample whose interval covers t
  Linear = 1,  ///< linear interpolation between neighbouring samples
};

/// An in-memory stimulus trace: the body of a `.strace` file.
struct StimulusTrace {
  double sample_rate_hz = 0.0;
  TraceInterp interp = TraceInterp::Hold;
  std::vector<StimulusSample> samples;
};

// `.strace` container frame (all little-endian):
//
//   offset  size  field
//   0       8     magic "ASCPSTRC"
//   8       4     format version (u32)
//   12      4     interpolation (u32, TraceInterp)
//   16      8     sample rate [Hz] (IEEE-754 double bit pattern)
//   24      8     sample count (u64)
//   32      4     CRC-32 of the payload (reflected 0xEDB88320)
//   36      16·n  payload: n × { rate_dps double, temp_c double }
//
// Versioning rules match the checkpoint container (see checkpoint.hpp):
// any layout change bumps kStraceVersion, readers reject versions they do
// not know, and truncation / bit-rot / bad magic raise distinct StateError
// messages so the chaos harness can tell the failure classes apart.
constexpr std::uint32_t kStraceVersion = 1;
constexpr std::size_t kStraceHeaderSize = 36;

/// Parsed frame header (stimulus_tool's inspect view).
struct StraceInfo {
  std::uint32_t version = 0;
  std::uint32_t interp = 0;
  double sample_rate_hz = 0.0;
  std::uint64_t count = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
};

std::vector<std::uint8_t> encode_strace(const StimulusTrace& trace);
/// Throws StateError on bad magic, unsupported version, truncation or CRC
/// mismatch (distinct messages).
StimulusTrace decode_strace(const std::vector<std::uint8_t>& bytes);
/// Parse the header without throwing: false only when the image is too short
/// for a header or the magic is wrong.
bool inspect_strace(const std::vector<std::uint8_t>& bytes, StraceInfo* info);

bool save_strace(const std::string& path, const StimulusTrace& trace);
StimulusTrace load_strace(const std::string& path);  ///< throws on I/O or format errors

class RecordedSource final : public StimulusSource {
 public:
  /// `tick_rate_hz` is the simulation rate the source will be sampled at;
  /// `start_tick` maps trace sample 0 onto that global tick. When the trace
  /// was captured at exactly tick_rate_hz, replay indexes samples with
  /// integer arithmetic — bit-exact, no interpolation rounding. Reads past
  /// the trace end hold the final sample and count as underruns.
  RecordedSource(std::shared_ptr<const StimulusTrace> trace, double tick_rate_hz,
                 long start_tick = 0);

  StimulusKind kind() const override { return StimulusKind::Recorded; }
  StimulusSample sample(long tick) override;
  void serialize_state(StateArchive& ar) override;
  std::int64_t cursor() const override { return cursor_; }
  std::uint64_t underruns() const override { return underruns_; }

  const StimulusTrace& trace() const { return *trace_; }

 private:
  std::shared_ptr<const StimulusTrace> trace_;
  double tick_rate_hz_;
  long start_;
  bool exact_;          ///< trace rate == simulation rate: integer indexing
  double step_;         ///< trace samples per simulation tick (inexact path)
  std::int64_t cursor_ = -1;
  std::uint64_t underruns_ = 0;
};

// ---- push-fed ingestion ----------------------------------------------------

/// What QueueSource returns when sampled with an empty buffer.
enum class UnderrunPolicy : std::uint32_t {
  HoldLast = 0,  ///< repeat the last delivered sample (default {0 °/s, 25 °C})
  Null = 1,      ///< the neutral environment: 0 °/s at 25 °C
};

class QueueSource final : public StimulusSource {
 public:
  struct Config {
    std::size_t capacity = 4096;  ///< bounded: push() refuses beyond this
    UnderrunPolicy underrun = UnderrunPolicy::HoldLast;
  };

  QueueSource() : QueueSource(Config()) {}
  explicit QueueSource(const Config& cfg) : cfg_(cfg) {}

  /// Enqueue one sample; false when the buffer is full (the producer sheds
  /// or backs off — the source never grows unbounded).
  bool push(const StimulusSample& s) {
    if (q_.size() >= cfg_.capacity) return false;
    q_.push_back(s);
    return true;
  }

  std::size_t pending() const { return q_.size(); }
  std::size_t capacity() const { return cfg_.capacity; }

  StimulusKind kind() const override { return StimulusKind::Queue; }

  StimulusSample sample(long /*tick*/) override {
    if (!q_.empty()) {
      last_ = q_.front();
      q_.pop_front();
      ++consumed_;
      return last_;
    }
    ++underruns_;
    return cfg_.underrun == UnderrunPolicy::HoldLast ? last_ : StimulusSample{};
  }

  void serialize_state(StateArchive& ar) override;
  std::int64_t cursor() const override { return consumed_; }
  std::uint64_t underruns() const override { return underruns_; }

 private:
  Config cfg_;
  std::deque<StimulusSample> q_;
  StimulusSample last_{};  ///< HoldLast fallback before any push: {0, 25}
  std::int64_t consumed_ = 0;
  std::uint64_t underruns_ = 0;
};

// ---- probes ----------------------------------------------------------------

/// Named tap points along the conditioning chain. The payload pair (a, b)
/// depends on the point:
///   Stimulus:        (rate_dps, temp_c)       — every analog tick
///   PostMems:        (dc_primary, dc_sense)   — pickoff capacitances [F]
///   PostAfe:         (v_primary, v_sense)     — charge-amp outputs [V]
///                    (Full fidelity only; Ideal has no AFE)
///   PostAdc:         (primary_v, sense_v)     — ADC codes as volts, at the
///                    DSP sample rate
///   DecimatedOutput: (out_v, measured_temp_c) — the decimated rate output
enum class ProbePoint : std::uint8_t {
  Stimulus = 0,
  PostMems = 1,
  PostAfe = 2,
  PostAdc = 3,
  DecimatedOutput = 4,
};

constexpr std::size_t kProbePointCount = 5;
const char* probe_point_name(ProbePoint p);

struct ProbeFrame {
  ProbePoint point = ProbePoint::Stimulus;
  long tick = 0;  ///< global base tick the values belong to
  double a = 0.0;
  double b = 0.0;
};

/// Read-only observer of chain taps. Discipline matches the obs layer: a
/// probe must not feed anything back (the output stream is bit-identical
/// attached or detached), and wants() lets the pipeline skip whole taps —
/// a detached probe schedules no task at all.
class Probe {
 public:
  virtual ~Probe() = default;
  /// Called at attach/schedule time; frames for rejected points are never
  /// produced (zero cost, not just dropped).
  virtual bool wants(ProbePoint p) const { (void)p; return true; }
  virtual void on_frame(const ProbeFrame& f) = 0;
};

/// Probe that captures the stimulus tap into a StimulusTrace — the writing
/// half of record → replay. `decimate` keeps every Nth frame (1 = every
/// analog tick, the bit-exact setting: sample_rate_hz must then equal the
/// simulation rate for RecordedSource's integer replay path).
class StimulusRecorder final : public Probe {
 public:
  explicit StimulusRecorder(double sample_rate_hz, std::size_t decimate = 1)
      : decimate_(decimate == 0 ? 1 : decimate) {
    trace_.sample_rate_hz = sample_rate_hz;
  }

  bool wants(ProbePoint p) const override { return p == ProbePoint::Stimulus; }

  void on_frame(const ProbeFrame& f) override {
    if (seen_++ % decimate_ != 0) return;
    trace_.samples.push_back({f.a, f.b});
  }

  const StimulusTrace& trace() const { return trace_; }
  StimulusTrace take() { return std::move(trace_); }

 private:
  StimulusTrace trace_;
  std::size_t decimate_;
  std::size_t seen_ = 0;
};

}  // namespace ascp::sensor
