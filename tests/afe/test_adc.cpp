#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "afe/adc.hpp"
#include "common/math.hpp"
#include "common/spectrum.hpp"

namespace ascp::afe {
namespace {

AdcConfig quiet_config(int bits = 12) {
  // Noise-free, linear configuration for deterministic transfer tests.
  AdcConfig cfg;
  cfg.bits = bits;
  cfg.noise_density = 0.0;
  cfg.inl_lsb = 0.0;
  cfg.dnl_sigma_lsb = 0.0;
  cfg.offset_drift = 0.0;
  cfg.gain_drift = 0.0;
  return cfg;
}

TEST(SarAdc, LsbMatchesResolution) {
  SarAdc adc(quiet_config(12), ascp::Rng(1));
  EXPECT_DOUBLE_EQ(adc.lsb(), 2.5 / 2048.0);
}

TEST(SarAdc, MidScaleConvertsNearZero) {
  SarAdc adc(quiet_config(), ascp::Rng(1));
  // Residual offset is only the sub-LSB mismatch draw.
  EXPECT_NEAR(adc.convert_volts(0.0), 0.0, adc.lsb());
}

TEST(SarAdc, TransferIsMonotone) {
  // DNL mismatch enabled — monotonicity must still hold (SAR arrays with
  // bounded DNL are monotone by construction in this model).
  AdcConfig cfg = quiet_config();
  cfg.dnl_sigma_lsb = 0.2;
  cfg.inl_lsb = 0.5;
  SarAdc adc(cfg, ascp::Rng(99));
  std::int32_t prev = adc.convert(-2.5);
  for (double v = -2.5; v <= 2.5; v += 0.002) {
    const auto c = adc.convert(v);
    EXPECT_GE(c, prev - 1) << v;  // allow ±1 code chatter from INL steps
    prev = std::max(prev, c);
  }
}

TEST(SarAdc, SaturatesAtRails) {
  SarAdc adc(quiet_config(10), ascp::Rng(1));
  EXPECT_EQ(adc.convert(10.0), 511);
  EXPECT_EQ(adc.convert(-10.0), -512);
}

TEST(SarAdc, GainIsUnityWithinTolerance) {
  SarAdc adc(quiet_config(), ascp::Rng(5));
  std::vector<double> x, y;
  for (double v = -2.0; v <= 2.0; v += 0.05) {
    x.push_back(v);
    y.push_back(adc.convert_volts(v));
  }
  const auto fit = ascp::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 2e-3);
}

TEST(SarAdc, NoiseProducesCodeSpread) {
  AdcConfig cfg = quiet_config();
  cfg.noise_density = 5e-6;  // strong noise: several LSB rms
  SarAdc adc(cfg, ascp::Rng(7));
  std::vector<double> codes;
  for (int i = 0; i < 2000; ++i) codes.push_back(static_cast<double>(adc.convert(0.5)));
  EXPECT_GT(ascp::stddev(codes), 0.5);
}

TEST(SarAdc, QuantizationNoiseFloorMatchesTheory) {
  // ENOB check: ideal quantizer SNR for a full-scale sine is 6.02·N+1.76 dB.
  AdcConfig cfg = quiet_config(10);
  cfg.fs = 240e3;
  SarAdc adc(cfg, ascp::Rng(11));
  // Integer number of cycles in the record so the tone fit has no leakage.
  const double fs = 240e3, f0 = 137.0 * fs / (1 << 15);
  const double amp = 2.5 * 0.95;
  std::vector<double> out(1 << 15);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = adc.convert_volts(amp * std::sin(kTwoPi * f0 * i / fs));
  // Remove the static offset draw: offset is a DC error, not noise.
  const double dc = mean(out);
  for (auto& v : out) v -= dc;
  const auto tone = estimate_tone(out, fs, f0);
  double residual_power = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double fit = tone.amplitude * std::cos(kTwoPi * f0 * i / fs + tone.phase);
    residual_power += (out[i] - fit) * (out[i] - fit);
  }
  residual_power /= static_cast<double>(out.size());
  const double snr_db = db10(tone.amplitude * tone.amplitude / 2.0 / residual_power);
  EXPECT_GT(snr_db, 6.02 * 10 + 1.76 - 3.0);
  EXPECT_LT(snr_db, 6.02 * 10 + 1.76 + 3.0);
}

TEST(SarAdc, OffsetDriftsWithTemperature) {
  AdcConfig cfg = quiet_config();
  cfg.offset_drift = 100e-6;  // 100 µV/°C, exaggerated for visibility
  SarAdc adc(cfg, ascp::Rng(13));
  const double cold = adc.convert_volts(0.0, -40.0);
  const double hot = adc.convert_volts(0.0, 125.0);
  EXPECT_NEAR(hot - cold, 100e-6 * 165.0, 3 * adc.lsb());
}

TEST(SarAdc, InlReadbackBounded) {
  AdcConfig cfg = quiet_config();
  cfg.inl_lsb = 0.5;
  cfg.dnl_sigma_lsb = 0.1;
  SarAdc adc(cfg, ascp::Rng(17));
  double worst = 0.0;
  for (std::int32_t c = -2048; c < 2048; c += 16) worst = std::max(worst, std::abs(adc.inl_at(c)));
  EXPECT_GT(worst, 0.01);  // nonlinearity exists...
  EXPECT_LT(worst, 4.0);   // ...but stays within a few LSB
}

TEST(SarAdc, EndpointInlIsZero) {
  AdcConfig cfg = quiet_config();
  cfg.inl_lsb = 1.0;
  SarAdc adc(cfg, ascp::Rng(19));
  EXPECT_NEAR(adc.inl_at(-2048), 0.0, 1e-9);
  EXPECT_NEAR(adc.inl_at(2047), 0.0, 1e-9);
}

TEST(SarAdc, SeedsGiveDifferentMismatch) {
  AdcConfig cfg = quiet_config();
  cfg.inl_lsb = 0.5;
  SarAdc a(cfg, ascp::Rng(1)), b(cfg, ascp::Rng(2));
  bool differ = false;
  for (std::int32_t c = -2000; c < 2000 && !differ; c += 64)
    differ = std::abs(a.inl_at(c) - b.inl_at(c)) > 1e-6;
  EXPECT_TRUE(differ);
}

// Resolution sweep: programmability knob of the platform (paper §3,
// "number of ADC bits").
class AdcBits : public ::testing::TestWithParam<int> {};

TEST_P(AdcBits, RoundTripErrorBoundedByLsbPlusMismatch) {
  SarAdc adc(quiet_config(GetParam()), ascp::Rng(23));
  for (double v = -2.0; v <= 2.0; v += 0.0137) {
    // Budget: ±1.5 LSB quantization/offset plus the ~1e-4 gain-mismatch draw
    // (which dominates at fine resolutions).
    EXPECT_LE(std::abs(adc.convert_volts(v) - v), adc.lsb() * 1.5 + std::abs(v) * 4e-4) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBits, ::testing::Values(8, 10, 12, 14, 16));

}  // namespace
}  // namespace ascp::afe
