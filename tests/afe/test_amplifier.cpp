#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "afe/amplifier.hpp"
#include "common/math.hpp"

namespace ascp::afe {
namespace {

AmplifierConfig quiet_config() {
  AmplifierConfig cfg;
  cfg.offset_volts = 0.0;
  cfg.offset_drift = 0.0;
  cfg.noise = NoiseSpec{0.0, 0.0};
  return cfg;
}

TEST(Amplifier, DcGainApplies) {
  AmplifierConfig cfg = quiet_config();
  cfg.gain = 10.0;
  Amplifier amp(cfg, ascp::Rng(1));
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = amp.step(0.1);
  EXPECT_NEAR(y, 1.0, 1e-6);
}

TEST(Amplifier, SaturatesAtRails) {
  AmplifierConfig cfg = quiet_config();
  cfg.gain = 100.0;
  cfg.vsat = 2.5;
  Amplifier amp(cfg, ascp::Rng(1));
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = amp.step(1.0);
  EXPECT_DOUBLE_EQ(y, 2.5);
}

TEST(Amplifier, BandwidthAttenuatesHighFrequency) {
  AmplifierConfig cfg = quiet_config();
  cfg.gain = 1.0;
  cfg.bandwidth_hz = 10e3;
  cfg.fs = 1.92e6;
  Amplifier amp(cfg, ascp::Rng(1));
  // Drive at 10× the corner: one-pole gives ~×0.1.
  const double f = 100e3;
  double peak = 0.0;
  for (int i = 0; i < 400000; ++i) {
    const double y = amp.step(std::sin(kTwoPi * f * i / cfg.fs));
    if (i > 200000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, 0.0995, 0.01);
}

TEST(Amplifier, Minus3DbAtCorner) {
  AmplifierConfig cfg = quiet_config();
  cfg.bandwidth_hz = 50e3;
  cfg.fs = 1.92e6;
  Amplifier amp(cfg, ascp::Rng(1));
  double peak = 0.0;
  for (int i = 0; i < 800000; ++i) {
    const double y = amp.step(std::sin(kTwoPi * 50e3 * i / cfg.fs));
    if (i > 400000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.03);
}

TEST(Amplifier, ProgrammableGainTakesEffect) {
  Amplifier amp(quiet_config(), ascp::Rng(1));
  amp.set_gain(4.0);
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = amp.step(0.25);
  EXPECT_NEAR(y, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(amp.gain(), 4.0);
}

TEST(Amplifier, ProgrammableBandwidthTakesEffect) {
  AmplifierConfig cfg = quiet_config();
  cfg.fs = 1.92e6;
  Amplifier amp(cfg, ascp::Rng(1));
  amp.set_bandwidth(1e3);
  const double f = 20e3;
  double peak = 0.0;
  for (int i = 0; i < 800000; ++i) {
    const double y = amp.step(std::sin(kTwoPi * f * i / cfg.fs));
    if (i > 400000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_LT(peak, 0.08);  // 20× past the new corner
}

TEST(Amplifier, OffsetIsAmplified) {
  AmplifierConfig cfg = quiet_config();
  cfg.gain = 100.0;
  cfg.offset_volts = 1e-3;  // 1σ of the draw
  Amplifier amp(cfg, ascp::Rng(42));
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = amp.step(0.0);
  EXPECT_GT(std::abs(y), 1e-3);  // some amplified offset is visible
  EXPECT_LT(std::abs(y), 0.5);
}

TEST(Amplifier, NoiseAppearsAtOutput) {
  AmplifierConfig cfg = quiet_config();
  cfg.gain = 1.0;
  cfg.noise = NoiseSpec{1e-6, 0.0};
  Amplifier amp(cfg, ascp::Rng(3));
  std::vector<double> v(20000);
  for (auto& x : v) x = amp.step(0.0);
  EXPECT_GT(ascp::stddev(v), 1e-5);
}

TEST(Amplifier, ResetClearsState) {
  // Narrow bandwidth so the internal pole state is observable.
  AmplifierConfig cfg = quiet_config();
  cfg.bandwidth_hz = 1e3;
  cfg.fs = 1.92e6;
  Amplifier amp(cfg, ascp::Rng(1));
  for (int i = 0; i < 4000000; ++i) amp.step(1.0);
  amp.reset();
  // First output after reset is a small fraction of the settled value.
  EXPECT_LT(std::abs(amp.step(1.0)), 0.1);
}

}  // namespace
}  // namespace ascp::afe
