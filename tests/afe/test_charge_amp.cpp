#include <gtest/gtest.h>

#include <cmath>

#include "afe/charge_amp.hpp"
#include "common/math.hpp"

namespace ascp::afe {
namespace {

ChargeAmpConfig quiet_config() {
  ChargeAmpConfig cfg;
  cfg.noise = NoiseSpec{0.0, 0.0};
  return cfg;
}

TEST(ChargeAmp, GainIsVbiasOverCf) {
  ChargeAmpConfig cfg = quiet_config();
  cfg.v_bias = 5.0;
  cfg.c_feedback_farads = 1e-12;
  ChargeAmp ca(cfg, ascp::Rng(1));
  EXPECT_DOUBLE_EQ(ca.gain(), 5e12);
}

TEST(ChargeAmp, CarrierPassesAtFullGain) {
  // 15 kHz capacitance modulation (the gyro carrier) sits far above the
  // high-pass corner and far below the bandwidth limit.
  ChargeAmpConfig cfg = quiet_config();
  ChargeAmp ca(cfg, ascp::Rng(1));
  const double fs = cfg.fs, f0 = 15e3;
  const double dc_amp = 0.1e-12;  // 0.1 pF swing
  double peak = 0.0;
  for (int i = 0; i < 800000; ++i) {
    const double y = ca.step(dc_amp * std::sin(kTwoPi * f0 * i / fs));
    if (i > 400000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, dc_amp * ca.gain(), 0.02 * dc_amp * ca.gain());
}

TEST(ChargeAmp, DcIsServoedOut) {
  // A static capacitance offset (electrode bias drift) is removed by the
  // DC servo high-pass.
  ChargeAmp ca(quiet_config(), ascp::Rng(1));
  double y = 0.0;
  for (int i = 0; i < 4000000; ++i) y = ca.step(0.2e-12);
  EXPECT_NEAR(y, 0.0, 1e-3);
}

TEST(ChargeAmp, SaturatesAtRails) {
  ChargeAmpConfig cfg = quiet_config();
  cfg.vsat = 2.5;
  ChargeAmp ca(cfg, ascp::Rng(1));
  const double fs = cfg.fs;
  double peak = 0.0;
  for (int i = 0; i < 400000; ++i) {
    const double y = ca.step(10e-12 * std::sin(kTwoPi * 15e3 * i / fs));
    peak = std::max(peak, std::abs(y));
  }
  EXPECT_LE(peak, 2.5 + 1e-12);
  EXPECT_NEAR(peak, 2.5, 1e-6);
}

TEST(ChargeAmp, BandwidthLimitsFastEdges) {
  ChargeAmpConfig cfg = quiet_config();
  cfg.bandwidth_hz = 100e3;
  ChargeAmp ca(cfg, ascp::Rng(1));
  // A step in capacitance does not appear instantaneously.
  const double y0 = ca.step(0.1e-12);
  EXPECT_LT(y0, 0.1e-12 * ca.gain() * 0.5);
}

TEST(ChargeAmp, NoiseFloorsOutput) {
  ChargeAmpConfig cfg = quiet_config();
  cfg.noise = NoiseSpec{100e-9, 0.0};
  ChargeAmp ca(cfg, ascp::Rng(5));
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double y = ca.step(0.0);
    sum_sq += y * y;
  }
  EXPECT_GT(std::sqrt(sum_sq / n), 1e-5);
}

TEST(ChargeAmp, ResetClearsState) {
  ChargeAmp ca(quiet_config(), ascp::Rng(1));
  for (int i = 0; i < 100000; ++i) ca.step(0.5e-12);
  ca.reset();
  EXPECT_LT(std::abs(ca.step(0.0)), 1e-9);
}

}  // namespace
}  // namespace ascp::afe
