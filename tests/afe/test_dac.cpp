#include <gtest/gtest.h>

#include <cmath>

#include "afe/dac.hpp"

namespace ascp::afe {
namespace {

DacConfig quiet_config() {
  DacConfig cfg;
  cfg.glitch_volts = 0.0;
  cfg.offset_drift = 0.0;
  cfg.settle_tau_s = 1e-7;  // effectively instant at µs steps
  return cfg;
}

TEST(Dac, CodeZeroNearZeroVolts) {
  Dac dac(quiet_config(), ascp::Rng(1));
  dac.write_code(0);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = dac.output(1e-6);
  EXPECT_NEAR(v, 0.0, 2 * dac.lsb());
}

TEST(Dac, FullScaleCodes) {
  Dac dac(quiet_config(), ascp::Rng(1));
  dac.write_code(2047);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = dac.output(1e-6);
  EXPECT_NEAR(v, 2.5, 0.01);
}

TEST(Dac, WriteVoltsRoundTrips) {
  Dac dac(quiet_config(), ascp::Rng(3));
  dac.write_volts(1.2345);
  double v = 0.0;
  for (int i = 0; i < 200; ++i) v = dac.output(1e-6);
  EXPECT_NEAR(v, 1.2345, 2 * dac.lsb());
}

TEST(Dac, CodesClampAtRange) {
  Dac dac(quiet_config(), ascp::Rng(1));
  dac.write_code(100000);
  double v = 0.0;
  for (int i = 0; i < 100; ++i) v = dac.output(1e-6);
  EXPECT_LE(v, 2.6);
  dac.write_code(-100000);
  for (int i = 0; i < 200; ++i) v = dac.output(1e-6);
  EXPECT_GE(v, -2.6);
}

TEST(Dac, SettlingFollowsExponential) {
  DacConfig cfg = quiet_config();
  cfg.settle_tau_s = 10e-6;
  Dac dac(cfg, ascp::Rng(5));
  dac.write_volts(1.0);
  // After one τ the output reaches ~63 % of the step.
  double v = 0.0;
  for (int i = 0; i < 10; ++i) v = dac.output(1e-6);
  EXPECT_NEAR(v, 1.0 - std::exp(-1.0), 0.05);
}

TEST(Dac, GlitchDecays) {
  DacConfig cfg = quiet_config();
  cfg.glitch_volts = 0.1;
  cfg.settle_tau_s = 10e-6;
  Dac dac(cfg, ascp::Rng(7));
  dac.write_code(-1);
  for (int i = 0; i < 100; ++i) dac.output(1e-6);
  // Mid-scale transition: −1 → 0 flips every bit (two's complement) → the
  // worst-case glitch.
  dac.write_code(0);
  const double just_after = dac.output(1e-6);
  double later = just_after;
  for (int i = 0; i < 200; ++i) later = dac.output(1e-6);
  EXPECT_GT(std::abs(just_after - later), 0.01);
}

TEST(Dac, MonotoneAcrossCodes) {
  Dac dac(quiet_config(), ascp::Rng(11));
  double prev = -1e9;
  for (std::int32_t c = -2048; c < 2048; c += 32) {
    dac.write_code(c);
    double v = 0.0;
    for (int i = 0; i < 50; ++i) v = dac.output(1e-6);
    EXPECT_GT(v, prev) << c;
    prev = v;
  }
}

TEST(Dac, OffsetDriftScalesWithTemperature) {
  DacConfig cfg = quiet_config();
  cfg.offset_drift = 1e-3;
  Dac dac(cfg, ascp::Rng(13));
  dac.write_volts(0.0);
  for (int i = 0; i < 100; ++i) dac.output(1e-6, 25.0);
  const double at25 = dac.output(1e-6, 25.0);
  const double at125 = dac.output(1e-6, 125.0);
  EXPECT_NEAR(at125 - at25, 0.1, 1e-3);
}

}  // namespace
}  // namespace ascp::afe
