#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "afe/frontend.hpp"
#include "common/math.hpp"
#include "common/spectrum.hpp"

namespace ascp::afe {
namespace {

FrontendConfig quiet_config() {
  FrontendConfig cfg;
  cfg.amp.offset_volts = 0.0;
  cfg.amp.offset_drift = 0.0;
  cfg.amp.noise = NoiseSpec{0.0, 0.0};
  cfg.adc.noise_density = 0.0;
  cfg.adc.inl_lsb = 0.0;
  cfg.adc.dnl_sigma_lsb = 0.0;
  cfg.adc.offset_drift = 0.0;
  cfg.adc.gain_drift = 0.0;
  return cfg;
}

TEST(Frontend, SampleRateIsAnalogOverDecimation) {
  AcquisitionChannel ch(quiet_config(), ascp::Rng(1));
  EXPECT_DOUBLE_EQ(ch.sample_rate(), 1.92e6 / 8.0);
}

TEST(Frontend, ProducesOneSamplePerDecimation) {
  AcquisitionChannel ch(quiet_config(), ascp::Rng(1));
  int count = 0;
  for (int i = 0; i < 800; ++i)
    if (ch.step(0.0)) ++count;
  EXPECT_EQ(count, 100);
}

TEST(Frontend, DcPassesThroughChannel) {
  AcquisitionChannel ch(quiet_config(), ascp::Rng(2));
  double last = 0.0;
  for (int i = 0; i < 100000; ++i)
    if (auto y = ch.step(0.8)) last = *y;
  EXPECT_NEAR(last, 0.8, 0.01);
}

TEST(Frontend, GainAppliesBeforeAdc) {
  FrontendConfig cfg = quiet_config();
  cfg.amp.gain = 2.0;
  AcquisitionChannel ch(cfg, ascp::Rng(3));
  double last = 0.0;
  for (int i = 0; i < 100000; ++i)
    if (auto y = ch.step(0.5)) last = *y;
  EXPECT_NEAR(last, 1.0, 0.01);
}

TEST(Frontend, CarrierSurvivesAcquisition) {
  // The 15 kHz gyro carrier must pass the AA filter (corner 60 kHz) and be
  // represented faithfully at the 240 kHz ADC rate.
  FrontendConfig cfg = quiet_config();
  AcquisitionChannel ch(cfg, ascp::Rng(5));
  const double fs_analog = cfg.analog_fs;
  std::vector<double> out;
  for (int i = 0; i < 1920000; ++i) {
    if (auto y = ch.step(0.5 * std::sin(kTwoPi * 15e3 * i / fs_analog))) out.push_back(*y);
  }
  const auto tone = estimate_tone(std::span(out).subspan(out.size() / 2), ch.sample_rate(), 15e3);
  EXPECT_NEAR(tone.amplitude, 0.5, 0.05);
}

TEST(Frontend, AliasBandIsSuppressed) {
  // Signal above ADC Nyquist (120 kHz) must be attenuated by the AA filter
  // before folding — not appear at full amplitude.
  FrontendConfig cfg = quiet_config();
  cfg.aa_corner_hz = 30e3;
  AcquisitionChannel ch(cfg, ascp::Rng(7));
  const double f_alias = 230e3;  // folds to 10 kHz
  std::vector<double> out;
  for (int i = 0; i < 1920000; ++i) {
    if (auto y = ch.step(1.0 * std::sin(kTwoPi * f_alias * i / cfg.analog_fs))) out.push_back(*y);
  }
  const auto tone = estimate_tone(std::span(out).subspan(out.size() / 2), ch.sample_rate(), 10e3);
  EXPECT_LT(tone.amplitude, 0.2);
}

TEST(Frontend, AccessorsExposeSubBlocks) {
  AcquisitionChannel ch(quiet_config(), ascp::Rng(9));
  ch.amplifier().set_gain(3.0);
  EXPECT_DOUBLE_EQ(ch.amplifier().gain(), 3.0);
  EXPECT_EQ(ch.adc().bits(), 12);
}

TEST(Frontend, ResetClearsFilters) {
  AcquisitionChannel ch(quiet_config(), ascp::Rng(11));
  for (int i = 0; i < 10000; ++i) ch.step(1.0);
  ch.reset();
  double first = 1.0;
  for (int i = 0; i < 8; ++i)
    if (auto y = ch.step(0.0)) first = *y;
  EXPECT_NEAR(first, 0.0, 0.05);
}

}  // namespace
}  // namespace ascp::afe
