#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "afe/noise.hpp"
#include "common/math.hpp"
#include "common/spectrum.hpp"

namespace ascp::afe {
namespace {

TEST(NoiseSource, WhiteDensityRealizedCorrectly) {
  // density d at rate fs ⇒ sigma = d·√(fs/2).
  const double d = 100e-9, fs = 1e6;
  NoiseSource src(NoiseSpec{d, 0.0}, fs, ascp::Rng(1));
  std::vector<double> v(200000);
  for (auto& x : v) x = src.sample();
  EXPECT_NEAR(ascp::rms(v), d * std::sqrt(fs / 2.0), 0.02 * d * std::sqrt(fs / 2.0));
}

TEST(NoiseSource, PsdMatchesDeclaredDensity) {
  const double d = 50e-9, fs = 100e3;
  NoiseSource src(NoiseSpec{d, 0.0}, fs, ascp::Rng(3));
  std::vector<double> v(1 << 17);
  for (auto& x : v) x = src.sample();
  const auto psd = ascp::welch_psd(v, fs, 1 << 11);
  const double measured = std::sqrt(psd.band_mean(fs * 0.05, fs * 0.4));
  EXPECT_NEAR(measured, d, 0.1 * d);
}

TEST(NoiseSource, ZeroSpecIsSilent) {
  NoiseSource src(NoiseSpec{0.0, 0.0}, 1e6, ascp::Rng(1));
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(src.sample(), 0.0);
}

TEST(NoiseSource, HotterIsNoisier) {
  NoiseSource cold(NoiseSpec{100e-9, 0.0}, 1e6, ascp::Rng(5));
  NoiseSource hot(NoiseSpec{100e-9, 0.0}, 1e6, ascp::Rng(5));
  std::vector<double> vc(100000), vh(100000);
  for (auto& x : vc) x = cold.sample(-40.0);
  for (auto& x : vh) x = hot.sample(125.0);
  EXPECT_GT(ascp::rms(vh), ascp::rms(vc) * 1.1);
}

TEST(NoiseSource, ThermalScaleIsSqrtKelvinRatio) {
  EXPECT_NEAR(thermal_noise_scale(25.0), 1.0, 1e-12);
  EXPECT_NEAR(thermal_noise_scale(125.0), std::sqrt(398.15 / 298.15), 1e-12);
  EXPECT_LT(thermal_noise_scale(-40.0), 1.0);
}

TEST(NoiseSource, FlickerRaisesLowFrequencyPsd) {
  const double d = 100e-9, fs = 100e3;
  NoiseSource white(NoiseSpec{d, 0.0}, fs, ascp::Rng(7));
  NoiseSource pink(NoiseSpec{d, 1e3}, fs, ascp::Rng(7));
  std::vector<double> vw(1 << 17), vp(1 << 17);
  for (auto& x : vw) x = white.sample();
  for (auto& x : vp) x = pink.sample();
  const auto pw = ascp::welch_psd(vw, fs, 1 << 12);
  const auto pp = ascp::welch_psd(vp, fs, 1 << 12);
  // Well below the 1 kHz corner the pink source must dominate.
  EXPECT_GT(pp.band_mean(20.0, 100.0), 2.0 * pw.band_mean(20.0, 100.0));
  // Well above the corner both are close to the white density.
  EXPECT_NEAR(pp.band_mean(20e3, 40e3), pw.band_mean(20e3, 40e3),
              1.0 * pw.band_mean(20e3, 40e3));
}

}  // namespace
}  // namespace ascp::afe
