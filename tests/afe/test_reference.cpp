#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "afe/reference.hpp"
#include "common/math.hpp"

namespace ascp::afe {
namespace {

TEST(VoltageReference, NominalAt25C) {
  VoltageReference ref(2.5, 0.0, 0.0, ascp::Rng(1));
  std::vector<double> v(1000);
  for (auto& x : v) x = ref.value(25.0);
  EXPECT_NEAR(ascp::mean(v), 2.5, 2.5 * 500e-6);  // within trim accuracy
}

TEST(VoltageReference, LinearTempcoApplies) {
  VoltageReference ref(2.5, 40.0, 0.0, ascp::Rng(2));  // 40 ppm/°C
  const double at25 = ref.value(25.0);
  const double at125 = ref.value(125.0);
  EXPECT_NEAR((at125 - at25) / at25, 40e-6 * 100.0, 5e-5);
}

TEST(VoltageReference, CurvatureBendsTheCurve) {
  VoltageReference ref(2.5, 0.0, 100.0, ascp::Rng(3));
  const double mid = ref.value(25.0);
  const double cold = ref.value(-40.0);
  const double hot = ref.value(85.0);
  // Quadratic term: both extremes deviate in the same direction.
  EXPECT_GT((cold - mid) * (hot - mid), 0.0);
}

TEST(Oscillator, NominalFrequency) {
  Oscillator osc(20e6, 0.0, 0.0, ascp::Rng(1));
  EXPECT_NEAR(osc.frequency(25.0), 20e6, 1.0);
}

TEST(Oscillator, TempcoShiftsFrequency) {
  Oscillator osc(20e6, -30.0, 0.0, ascp::Rng(1));
  EXPECT_NEAR(osc.frequency(125.0), 20e6 * (1.0 - 30e-6 * 100.0), 10.0);
}

TEST(Oscillator, JitterSpreadsSamples) {
  Oscillator osc(20e6, 0.0, 50.0, ascp::Rng(5));
  std::vector<double> f(10000);
  for (auto& x : f) x = osc.frequency(25.0);
  EXPECT_NEAR(ascp::stddev(f) / 20e6, 50e-6, 10e-6);
}

TEST(TempSensor, TracksTrueTemperature) {
  TempSensor ts(0.0, 0.0, ascp::Rng(1));
  std::vector<double> err(1000);
  for (auto& e : err) e = ts.read(60.0) - 60.0;
  EXPECT_NEAR(ascp::mean(err), 0.0, 0.05);
}

TEST(TempSensor, GainErrorGrowsWithKelvin) {
  // 1 % PTAT gain error ⇒ ~3.3 °C error at 60 °C but anchored to kelvin.
  TempSensor ts(1.0, 0.0, ascp::Rng(42));
  std::vector<double> at_hot(500), at_cold(500);
  for (auto& x : at_hot) x = ts.read(85.0) - 85.0;
  for (auto& x : at_cold) x = ts.read(-40.0) - (-40.0);
  // Error magnitudes differ because the PTAT error scales with T_abs.
  EXPECT_NE(std::abs(ascp::mean(at_hot)), std::abs(ascp::mean(at_cold)));
}

TEST(TempSensor, NoiseIsSmall) {
  TempSensor ts(0.0, 0.0, ascp::Rng(7));
  std::vector<double> v(2000);
  for (auto& x : v) x = ts.read(25.0);
  EXPECT_LT(ascp::stddev(v), 0.2);
}

}  // namespace
}  // namespace ascp::afe
