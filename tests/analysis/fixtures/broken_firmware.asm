; broken_firmware.asm — intentionally defective image for the firmware
; analyzer tests and the platform_lint --asm negative fixture.
;
; Planted defects (all must be flagged):
;   * MOVX store to the read-only SPI STATUS register at 0xFF04  -> error
;   * RET at top level (return-address underflow)                -> error
;   * unreachable code after the RET                             -> warning
        ORG 0
start:  MOV DPTR,#0FF04h     ; SPI STATUS — read-only word register
        MOV A,#1
        MOVX @DPTR,A         ; write is dropped by the bridge: error
        RET                  ; top level: pops garbage into PC

dead:   MOV A,#42            ; never reached from the entry point
        SJMP dead
