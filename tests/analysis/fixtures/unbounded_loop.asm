; Negative WCET fixture: a data-dependent loop with no counted idiom and no
; ;@loop-bound/;@loop-wait annotation. firmware_lint accepts this image (no
; illegal stores, balanced stack); only the timing analyzer must reject it
; with an "unbounded loop" error on the JNZ back edge.
        ORG 0
start:  MOV SP,#40h
        MOV A,#0C3h          ; any nonzero seed
        LCALL churn
done:   SJMP done            ; park (exit-free main loop — needs no bound)

churn:  MOV R7,A             ; rotate until the byte happens to hit zero:
w:      RRC A                ; iteration count depends on data, not a counter
        JNZ w
        MOV A,R7
        RET
