// Static 8051 firmware analyzer: the whole shipped corpus must verify with
// zero errors against the live register map, and the planted-defect fixture
// must be flagged (read-only store, top-level RET, unreachable code).
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/firmware_corpus.hpp"
#include "analysis/firmware_lint.hpp"
#include "analysis/regmap_lint.hpp"
#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"

using namespace ascp;
using namespace ascp::analysis;

namespace {

struct Platform {
  Platform() {
    auto cfg = core::default_gyro_system(core::Fidelity::Full);
    cfg.with_mcu = true;
    cfg.with_safety = true;
    gyro = std::make_unique<core::GyroSystem>(cfg);
    spec = platform_regmap(gyro->platform());
  }
  std::unique_ptr<core::GyroSystem> gyro;
  RegMapSpec spec;
};

Platform& plat() {
  static Platform p;
  return p;
}

FirmwareLintOptions options() {
  FirmwareLintOptions opt;
  opt.map = &plat().spec;
  opt.extra_sfrs = {0xA1, 0xA2, 0xA3, 0xA4, 0xA5};  // cache controller
  return opt;
}

FirmwareImage assemble(const std::string& src, const std::string& name) {
  mcu::Assembler as;
  const auto r = as.assemble(src);
  FirmwareImage fw;
  fw.name = name;
  fw.base = r.entry;
  fw.entry = r.entry;
  fw.image.assign(r.image.begin() + r.entry, r.image.end());
  return fw;
}

}  // namespace

TEST(FirmwareLint, ShippedCorpusHasZeroErrors) {
  const auto images =
      corpus::shipped_firmware(plat().gyro->platform().config().map);
  EXPECT_EQ(images.size(), 7u);  // boot, monitor ROM + 5 applications
  for (const auto& fw : images) {
    const Report rep = check_firmware(fw, options());
    EXPECT_EQ(rep.errors(), 0) << fw.name << ":\n" << rep.format();
  }
}

TEST(FirmwareLint, KickingMonitorsHaveNoLivenessWarnings) {
  // The two watchdog-driven monitors kick inside every exit-free loop; the
  // analyzer must prove it (no liveness warnings), not just not-error.
  const auto& map = plat().gyro->platform().config().map;
  for (const auto* name : {"diag_monitor", "telemetry_monitor", "watchdog_kicker"}) {
    for (const auto& fw : corpus::shipped_firmware(map)) {
      if (fw.name != name) continue;
      const Report rep = check_firmware(fw, options());
      EXPECT_FALSE(rep.mentions("never kicks the watchdog")) << fw.name << ":\n"
                                                             << rep.format();
    }
  }
}

TEST(FirmwareLint, BrokenFixtureIsFlagged) {
  std::ifstream in(std::string(ASCP_FIXTURE_DIR) + "/broken_firmware.asm");
  ASSERT_TRUE(in.is_open());
  std::ostringstream ss;
  ss << in.rdbuf();
  const Report rep = check_firmware(assemble(ss.str(), "broken_firmware"), options());
  EXPECT_GE(rep.errors(), 2) << rep.format();
  EXPECT_TRUE(rep.mentions("read-only register spi.SPI_STATUS"));
  EXPECT_TRUE(rep.mentions("RET"));
  EXPECT_TRUE(rep.mentions("unreachable"));
}

TEST(FirmwareLint, TopLevelRetIsAnError) {
  const Report rep = check_firmware(assemble("  MOV A,#1\n  RET\n", "ret"), options());
  EXPECT_GE(rep.errors(), 1);
  EXPECT_TRUE(rep.mentions("RET"));
}

TEST(FirmwareLint, UnboundedStackGrowthIsAnError) {
  const Report rep = check_firmware(
      assemble("loop: PUSH ACC\n  SJMP loop\n", "push_loop"), options());
  EXPECT_GE(rep.errors(), 1);
  EXPECT_TRUE(rep.mentions("stack")) << rep.format();
}

TEST(FirmwareLint, StackDepthBoundIsReported) {
  const Report rep = check_firmware(
      assemble("  LCALL f\nend: SJMP end\nf: LCALL g\n  RET\ng: RET\n", "calls"),
      options());
  EXPECT_EQ(rep.errors(), 0) << rep.format();
  EXPECT_TRUE(rep.mentions("worst-case stack"));
  EXPECT_TRUE(rep.mentions("4 byte(s)"));  // two nested LCALLs
}

TEST(FirmwareLint, WriteToReadOnlyBridgeRegisterIsAnError) {
  // 0xFF26 = watchdog STATUS (word offset 3): hardware-owned.
  const Report rep = check_firmware(
      assemble("  MOV DPTR,#0FF26h\n  MOVX @DPTR,A\nend: SJMP end\n", "wd_status"),
      options());
  EXPECT_GE(rep.errors(), 1);
  EXPECT_TRUE(rep.mentions("read-only register watchdog.WDT_STATUS")) << rep.format();
}

TEST(FirmwareLint, KickFreeEternalLoopIsAWarning) {
  const Report rep =
      check_firmware(assemble("loop: SJMP loop\n", "spin"), options());
  EXPECT_EQ(rep.errors(), 0);
  EXPECT_TRUE(rep.mentions("never kicks the watchdog"));
}
