// Static fixed-point range analyzer: proves the shipped (Table 1,
// SensorDynamics) configuration saturation-free over the datasheet input
// range, and pinpoints the saturating stage when a configuration breaks.
#include <gtest/gtest.h>

#include "analysis/range_lint.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::analysis;

namespace {

const StageRange* find_stage(const std::vector<StageRange>& v, const std::string& s) {
  for (const auto& r : v)
    if (r.stage == s) return &r;
  return nullptr;
}

}  // namespace

TEST(RangeLint, Table1SenseChainIsProvenSaturationFree) {
  // The acceptance property: the SensorDynamics configuration the paper's
  // Table 1 characterizes is statically saturation-free over the datasheet
  // input range (±rail at the ADC, −40..85 °C).
  const auto cfg = core::default_gyro_system(core::Fidelity::Full);
  const auto stages = sense_chain_ranges(cfg.sense, cfg.comp);
  EXPECT_GE(stages.size(), 10u);
  for (const auto& s : stages)
    EXPECT_FALSE(s.saturates()) << s.stage << ": bound " << s.bound << " vs "
                                << s.format << " limit " << s.limit;
}

TEST(RangeLint, Table1FullPlatformRangesAreClean) {
  const auto cfg = core::default_gyro_system(core::Fidelity::Full);
  const Report rep = check_ranges(cfg.sense, cfg.drive, cfg.comp);
  EXPECT_TRUE(rep.clean()) << rep.format();
  EXPECT_TRUE(rep.mentions("headroom"));
}

TEST(RangeLint, DriveLoopClampsBoundTheActuators) {
  const auto cfg = core::default_gyro_system(core::Fidelity::Full);
  const auto stages = drive_loop_ranges(cfg.drive);
  const auto* gain = find_stage(stages, "drive.agc.gain");
  ASSERT_NE(gain, nullptr);
  EXPECT_FALSE(gain->saturates());
  const auto* integ = find_stage(stages, "drive.pll.integrator");
  ASSERT_NE(integ, nullptr);
  EXPECT_FALSE(integ->saturates());
}

TEST(RangeLint, OutputLpfUsesComposedCascadeBound) {
  // The Q=1.3 Butterworth section peaks at √2 alone; composed with its
  // Q=0.54 partner the cascade is flat. The analyzer must bound the cascade
  // output by the composed peak, or every flat 4th-order filter would be a
  // false saturation report.
  const auto cfg = core::default_gyro_system(core::Fidelity::Full);
  const auto stages = sense_chain_ranges(cfg.sense, cfg.comp);
  const auto* mid = find_stage(stages, "sense.output_lpf[0]");
  const auto* out = find_stage(stages, "sense.output_lpf[1]");
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_LT(out->bound, 1.1 * mid->bound);  // no √2 blow-up across the cascade
  EXPECT_FALSE(out->saturates());
}

TEST(RangeLint, SaturatingConfigurationPinpointsTheStage) {
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.comp.s0 = 3.0;  // ×3 compensation scale drives the output past Q1_22 FS
  const auto stages = sense_chain_ranges(cfg.sense, cfg.comp);
  const auto* comp = find_stage(stages, "sense.compensation");
  ASSERT_NE(comp, nullptr);
  EXPECT_TRUE(comp->saturates());

  const Report rep = check_ranges(cfg.sense, cfg.drive, cfg.comp);
  EXPECT_FALSE(rep.clean());
  bool names_stage = false;
  for (const auto& f : rep.findings())
    if (f.severity == Severity::Error && f.location == "sense.compensation")
      names_stage = true;
  EXPECT_TRUE(names_stage) << rep.format();
}

TEST(RangeLint, HeadroomIsPositiveAndFinite) {
  const auto cfg = core::default_gyro_system(core::Fidelity::Full);
  for (const auto& s : sense_chain_ranges(cfg.sense, cfg.comp)) {
    if (s.limit == 0.0) continue;  // informational stages
    EXPECT_GT(s.headroom_db(), 0.0) << s.stage;
    EXPECT_LT(s.headroom_db(), 120.0) << s.stage;
  }
}
