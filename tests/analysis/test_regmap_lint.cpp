// Static register-map checker: the shipped platform map must verify clean
// (including the safety DIAG block), and every planted defect class must be
// flagged — overlap, out-of-window registers, zero-width fields, writable
// fields in read-only registers.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/regmap_lint.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;
using namespace ascp::analysis;

namespace {

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(ASCP_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

RegMapSpec shipped_map() {
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  static core::GyroSystem gyro(cfg);  // one platform build for the suite
  return platform_regmap(gyro.platform());
}

}  // namespace

TEST(RegmapLint, ShippedPlatformMapIsClean) {
  const RegMapSpec spec = shipped_map();
  EXPECT_GE(spec.blocks.size(), 5u);  // regfile + spi + timer + watchdog + sram
  EXPECT_GE(spec.memories.size(), 2u);
  const Report rep = check_regmap(spec);
  EXPECT_TRUE(rep.clean()) << rep.format();
}

TEST(RegmapLint, ShippedMapIncludesDiagBlockUnchanged) {
  // The PR-1 safety DIAG registers live in the regfile window and must pass
  // the checker exactly as the supervisor declares them.
  const RegMapSpec spec = shipped_map();
  const BlockSpec* regfile = nullptr;
  for (const auto& b : spec.blocks)
    if (b.name == "regfile") regfile = &b;
  ASSERT_NE(regfile, nullptr);
  int diag_regs = 0;
  for (const auto& r : regfile->regs)
    if (r.name.rfind("diag_", 0) == 0) {
      ++diag_regs;
      if (r.name == "diag_dtc" || r.name == "diag_state") {
        EXPECT_FALSE(r.writable);
      }
      if (r.name == "diag_clear") {
        EXPECT_TRUE(r.writable);
      }
    }
  EXPECT_EQ(diag_regs, 5);
  EXPECT_TRUE(check_regmap(spec).clean());
}

TEST(RegmapLint, AdjacentButNonOverlappingBlocksPass) {
  RegMapSpec spec;
  spec.blocks.push_back({"a", 0xFF00, 3, {{"r0", 0, true, {}}}});
  spec.blocks.push_back({"b", 0xFF06, 4, {{"r0", 0, true, {}}}});  // starts at a's end
  spec.memories.push_back({"prog", 0x8000, 0x7F00});               // ends at 0xFF00
  const Report rep = check_regmap(spec);
  EXPECT_TRUE(rep.clean()) << rep.format();
}

TEST(RegmapLint, OverlappingBlocksAreErrors) {
  RegMapSpec spec;
  spec.blocks.push_back({"a", 0xFF00, 3, {}});
  spec.blocks.push_back({"b", 0xFF04, 4, {}});  // 0xFF04 is a's last register
  const Report rep = check_regmap(spec);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.mentions("overlaps"));
}

TEST(RegmapLint, ZeroWidthFieldIsRejected) {
  RegMapSpec spec;
  BlockSpec b{"blk", 0x4000, 1, {}};
  b.regs.push_back({"ctrl", 0, true, {{"dead", 0, 0, true, false}}});
  spec.blocks.push_back(b);
  const Report rep = check_regmap(spec);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.mentions("zero-width field 'dead'"));
}

TEST(RegmapLint, RegisterFileRejectsZeroWidthFieldAtDeclaration) {
  platform::RegisterFile rf;
  rf.define("ctrl", 0, platform::RegKind::Config);
  EXPECT_THROW(rf.declare_fields(0, {{"dead", 0, 0, true, false}}),
               std::invalid_argument);
}

TEST(RegmapLint, WritableFieldInReadOnlyRegisterIsError) {
  RegMapSpec spec;
  BlockSpec b{"blk", 0x4000, 1, {}};
  b.regs.push_back({"status", 0, /*writable=*/false, {{"flag", 0, 1, true, false}}});
  spec.blocks.push_back(b);
  const Report rep = check_regmap(spec);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.mentions("writable field 'flag' inside read-only register"));
}

TEST(RegmapLint, OverlappingMapFixtureIsFlagged) {
  Report rep;
  const RegMapSpec spec = parse_regmap(read_fixture("overlapping_map.regmap"), rep);
  rep.merge(check_regmap(spec));
  EXPECT_GE(rep.errors(), 4);
  EXPECT_TRUE(rep.mentions("overlaps"));                   // spi vs timer windows
  EXPECT_TRUE(rep.mentions("outside the"));                // reg 'ghost'
  EXPECT_TRUE(rep.mentions("zero-width field 'dead'"));    // field width 0
  EXPECT_TRUE(rep.mentions("writable field 'done'"));      // rw field in ro reg
}

TEST(RegmapLint, ParserReportsSyntaxErrorsWithLineNumbers) {
  Report rep;
  parse_regmap("block b 0x4000 1\nreg r zz rw\n", rep);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(rep.mentions("bad number"));
}
