// Static WCET & schedulability analyzer (analysis/timing_lint).
//
// The analyzer's soundness rests on three legs, each tested here:
//   1. the per-opcode cycle table agrees with core8051::step() for every one
//      of the 256 opcodes (exhaustive differential test, not a sample);
//   2. loop bounds: counted DJNZ/CJNE inference, ;@loop-bound/;@loop-wait
//      annotations (including their parse errors), and the hard error on a
//      back edge with neither;
//   3. composition: exact hand-computed WCETs for straight-line code, nested
//      counted loops, calls, ISRs and cache-miss charging.
// Plus the schedulability checker's units and regression pins over the
// shipped firmware corpus (bench/wcet_validation proves the same numbers
// dynamically against the ISS).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/firmware_corpus.hpp"
#include "analysis/timing_lint.hpp"
#include "mcu/assembler.hpp"
#include "mcu/bus.hpp"
#include "mcu/core8051.hpp"

namespace ascp::analysis {
namespace {

/// Package an assembled source the way platform_lint does: image rebased to
/// the entry, annotations carried over.
FirmwareImage make_fw(const std::string& src, const std::string& name = "test") {
  mcu::Assembler as;
  const mcu::AsmResult r = as.assemble(src);
  FirmwareImage fw;
  fw.name = name;
  fw.base = r.entry;
  fw.entry = r.entry;
  fw.image.assign(r.image.begin() + r.entry, r.image.end());
  for (const auto& [addr, a] : r.loop_annots) fw.loop_annots[addr] = LoopAnnot{a.bound, a.wait};
  return fw;
}

const FunctionWcet* find_kind(const WcetResult& w, FunctionWcet::Kind k) {
  for (const auto& f : w.functions)
    if (f.kind == k) return &f;
  return nullptr;
}

// ---- 1. cycle table ---------------------------------------------------------

TEST(CycleTable, AgreesWithIssForAllOpcodes) {
  // Execute every opcode once on a fresh core (benign operand bytes, RAM-
  // backed XDATA bus so MOVX lands somewhere real) and compare the cycles
  // step() charges with the static table. This is the exhaustive proof that
  // the WCET base costs are exact, not approximate.
  for (int op = 0; op < 256; ++op) {
    mcu::Core8051 core;
    mcu::BridgedBus bus(4096);
    core.set_xdata_bus(&bus);
    core.load_program({static_cast<std::uint8_t>(op), 0x42, 0x03});
    const int executed = core.step();
    EXPECT_EQ(executed, opcode_cycles(static_cast<std::uint8_t>(op)))
        << "opcode 0x" << std::hex << op;
    EXPECT_EQ(static_cast<long>(executed), core.cycle_count())
        << "opcode 0x" << std::hex << op;
  }
}

// ---- 2. annotations ---------------------------------------------------------

TEST(LoopAnnotations, BindToTheBackEdgeInstruction) {
  mcu::Assembler as;
  const auto r = as.assemble(
      "        ORG 0\n"
      "lp:     NOP\n"
      "        DJNZ R2,lp       ;@loop-bound 12 ; prose after the second ';'\n"
      "w:      JNB RI,w         ;@loop-wait\n");
  ASSERT_EQ(r.loop_annots.size(), 2u);
  ASSERT_TRUE(r.loop_annots.count(0x0001));  // the DJNZ
  EXPECT_EQ(r.loop_annots.at(0x0001).bound, 12);
  EXPECT_FALSE(r.loop_annots.at(0x0001).wait);
  ASSERT_TRUE(r.loop_annots.count(0x0003));  // the JNB
  EXPECT_TRUE(r.loop_annots.at(0x0003).wait);
}

TEST(LoopAnnotations, CommentOnlyLineBindsToNextInstruction) {
  mcu::Assembler as;
  const auto r = as.assemble(
      "        ORG 0\n"
      "        ;@loop-bound 7\n"
      "lp:     DJNZ R3,lp\n");
  ASSERT_TRUE(r.loop_annots.count(0x0000));
  EXPECT_EQ(r.loop_annots.at(0x0000).bound, 7);
}

TEST(LoopAnnotations, MalformedBoundIsAnAssemblyError) {
  mcu::Assembler as;
  EXPECT_THROW(as.assemble("lp: DJNZ R2,lp ;@loop-bound zero\n"), mcu::AsmError);
  EXPECT_THROW(as.assemble("lp: DJNZ R2,lp ;@loop-bound 0\n"), mcu::AsmError);
  EXPECT_THROW(as.assemble("lp: DJNZ R2,lp ;@loop-bound -3\n"), mcu::AsmError);
  EXPECT_THROW(as.assemble("lp: DJNZ R2,lp ;@loop-bound\n"), mcu::AsmError);
  // Typo'd annotation names must not be silently ignored.
  EXPECT_THROW(as.assemble("lp: DJNZ R2,lp ;@loop-bond 4\n"), mcu::AsmError);
}

TEST(LoopAnnotations, DanglingOrDataBoundAnnotationsAreErrors) {
  mcu::Assembler as;
  EXPECT_THROW(as.assemble("        NOP\n        ;@loop-bound 4\n"), mcu::AsmError);
  EXPECT_THROW(as.assemble("        ;@loop-bound 4\n        DB 1, 2\n"), mcu::AsmError);
  EXPECT_THROW(
      as.assemble("        ;@loop-bound 4\n        ;@loop-bound 5\n        NOP\n"),
      mcu::AsmError);
}

// ---- 3. WCET composition ----------------------------------------------------

TEST(Wcet, StraightLineEntryAndParkLoop) {
  const auto w = analyze_wcet(make_fw("        MOV A,#5\n"
                                      "        ADD A,#3\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->bounded);
  EXPECT_EQ(entry->cycles, 2);  // MOV(1) + ADD(1); the park loop is the main loop
  const auto* loop = find_kind(w, FunctionWcet::Kind::MainLoop);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->cycles, 2);  // one SJMP round
}

TEST(Wcet, CountedDjnzLoopIsInferredFromItsInitializer) {
  const auto w = analyze_wcet(make_fw("        MOV R2,#10\n"
                                      "lp:     NOP\n"
                                      "        DJNZ R2,lp\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // MOV(1) + 10 × (NOP 1 + DJNZ 2)
  EXPECT_EQ(entry->cycles, 31);
}

TEST(Wcet, NestedCountedLoopsMultiply) {
  const auto w = analyze_wcet(make_fw("        MOV R4,#3\n"
                                      "outer:  MOV R5,#4\n"
                                      "inner:  NOP\n"
                                      "        DJNZ R5,inner\n"
                                      "        DJNZ R4,outer\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // 1 + 3 × (1 + 4×(1+2) + 2)
  EXPECT_EQ(entry->cycles, 46);
}

TEST(Wcet, CjneIncrementIdiomIsInferred) {
  const auto w = analyze_wcet(make_fw("        MOV R3,#0\n"
                                      "lp:     INC R3\n"
                                      "        CJNE R3,#5,lp\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // 1 + 5 × (INC 1 + CJNE 2)
  EXPECT_EQ(entry->cycles, 16);
}

TEST(Wcet, AnnotatedBoundIsHonored) {
  const auto w = analyze_wcet(make_fw("start:  MOV A,#0C3h\n"
                                      "lp:     RRC A\n"
                                      "        JNZ lp           ;@loop-bound 8\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // MOV(1) + 8 × (RRC 1 + JNZ 2)
  EXPECT_EQ(entry->cycles, 25);
}

TEST(Wcet, WaitLoopsCostNothingAndExportTheirPcs) {
  const auto w = analyze_wcet(make_fw("        MOV A,#1\n"
                                      "w:      JNB RI,w         ;@loop-wait\n"
                                      "        MOV A,SBUF\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // MOV(1) + wait(0) + MOV(1): the spin contributes nothing busy.
  EXPECT_EQ(entry->cycles, 2);
  EXPECT_TRUE(w.wait_pcs.count(0x0002));  // the JNB itself
}

TEST(Wcet, UnannotatedDataDependentBackEdgeIsAHardError) {
  const auto w = analyze_wcet(make_fw("start:  MOV A,#0C3h\n"
                                      "lp:     RRC A\n"
                                      "        JNZ lp\n"
                                      "done:   SJMP done\n"));
  EXPECT_FALSE(w.report.clean());
  EXPECT_TRUE(w.report.mentions("loop-bound"));
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->bounded);
}

TEST(Wcet, CacheMissPenaltyChargedPerDataWindowAccess) {
  TimingOptions opt;
  opt.cache_miss_penalty = 34;
  opt.cache_data_sfr = 0xA4;
  const auto fw = make_fw("        MOV 0A4h,A\n"
                          "        MOV A,0A4h\n"
                          "done:   SJMP done\n");
  const auto w = analyze_wcet(fw, opt);
  EXPECT_TRUE(w.report.clean());
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  // (1+34) + (1+34): the static model assumes every CDATA access misses.
  EXPECT_EQ(entry->cycles, 70);
  // Without the cache model the same code costs 2.
  const auto plain = analyze_wcet(fw);
  EXPECT_EQ(find_kind(plain, FunctionWcet::Kind::TopLevel)->cycles, 2);
}

TEST(Wcet, CallsComposeAndRoutineIncludesItsRet) {
  const auto w = analyze_wcet(make_fw("        LCALL sub\n"
                                      "done:   SJMP done\n"
                                      "sub:    NOP\n"
                                      "        RET\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* sub = find_kind(w, FunctionWcet::Kind::Routine);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->cycles, 3);  // NOP(1) + RET(2); the LCALL belongs to the caller
  const auto* entry = find_kind(w, FunctionWcet::Kind::TopLevel);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->cycles, 5);  // LCALL(2) + sub(3)
}

TEST(Wcet, RecursionIsDiagnosedNotLoopedForever) {
  const auto w = analyze_wcet(make_fw("        LCALL sub\n"
                                      "done:   SJMP done\n"
                                      "sub:    LCALL sub\n"
                                      "        RET\n"));
  EXPECT_FALSE(w.report.clean());
  EXPECT_TRUE(w.report.mentions("recursi"));
}

TEST(Wcet, EnabledInterruptVectorGetsAnIsrBound) {
  const auto w = analyze_wcet(make_fw("        ORG 0\n"
                                      "        LJMP main\n"
                                      "        ORG 3\n"
                                      "        RETI\n"
                                      "main:   MOV IE,#81h\n"
                                      "done:   SJMP done\n"));
  EXPECT_TRUE(w.report.clean());
  const auto* isr = find_kind(w, FunctionWcet::Kind::Isr);
  ASSERT_NE(isr, nullptr);
  EXPECT_EQ(isr->entry, 0x0003);
  EXPECT_TRUE(isr->bounded);
  EXPECT_EQ(isr->cycles, 4);  // 2-cycle dispatch + RETI(2)
}

// ---- schedulability ---------------------------------------------------------

TEST(Schedulability, CleanTaskSetPassesWithUtilizationReported) {
  ScheduleSpec s;
  s.name = "t";
  s.base_rate_hz = 1875.0;
  s.cycles_per_tick = 100;
  s.tasks = {{"a", 1, 0, 40}, {"b", 4, 1, 50}};
  const Report r = check_schedule(s);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.warnings(), 0);  // worst tick: 40 + 50 = 90 <= 100
  EXPECT_TRUE(r.mentions("utilization 52.5%"));  // 40/100 + 50/400
}

TEST(Schedulability, SlotOverrunIsAnError) {
  ScheduleSpec s;
  s.name = "t";
  s.cycles_per_tick = 100;
  s.tasks = {{"fat", 1, 0, 150}};
  const Report r = check_schedule(s);
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.mentions("slot overrun"));
}

TEST(Schedulability, NearSaturationWarnsAndOverSubscriptionErrors) {
  ScheduleSpec s;
  s.name = "t";
  s.cycles_per_tick = 100;
  s.tasks = {{"a", 1, 0, 45}, {"b", 1, 0, 45}};
  const Report warm = check_schedule(s);
  EXPECT_TRUE(warm.clean());
  EXPECT_EQ(warm.warnings(), 1);  // 90% > 85%
  s.tasks = {{"a", 1, 0, 60}, {"b", 1, 0, 60}};
  const Report over = check_schedule(s);
  EXPECT_FALSE(over.clean());
  EXPECT_TRUE(over.mentions("over-subscribed"));
}

TEST(Schedulability, PhaseAlignmentTransientOverrunIsAWarning) {
  ScheduleSpec s;
  s.name = "t";
  s.cycles_per_tick = 100;
  // 35% total utilization, but both fire on the same tick every 4th tick.
  s.tasks = {{"a", 4, 0, 70}, {"b", 4, 0, 70}};
  const Report aligned = check_schedule(s);
  EXPECT_TRUE(aligned.clean());
  EXPECT_TRUE(aligned.mentions("transient tick overrun"));
  // Phase-shifting one task resolves the collision.
  s.tasks = {{"a", 4, 0, 70}, {"b", 4, 2, 70}};
  const Report shifted = check_schedule(s);
  EXPECT_TRUE(shifted.clean());
  EXPECT_EQ(shifted.warnings(), 0);
}

TEST(Schedulability, InvalidDividerOrPhaseIsAnError) {
  ScheduleSpec s;
  s.name = "t";
  s.cycles_per_tick = 100;
  s.tasks = {{"bad", 2, 2, 10}};  // phase must be < divider
  EXPECT_FALSE(check_schedule(s).clean());
  s.tasks = {};
  EXPECT_TRUE(check_schedule(s).clean());  // empty set: trivially schedulable
}

// ---- corpus regression pins -------------------------------------------------

TEST(Corpus, EveryShippedImageIsFullyBoundedAndClean) {
  TimingOptions opt;
  opt.cache_miss_penalty = 34;
  for (const auto& fw : corpus::shipped_firmware()) {
    const auto w = analyze_wcet(fw, opt);
    EXPECT_TRUE(w.report.clean()) << fw.name << "\n" << w.report.format();
    for (const auto& f : w.functions)
      EXPECT_TRUE(f.bounded) << fw.name << "/" << f.name;
  }
}

TEST(Corpus, MonitorRomRoundWcetIsPinned) {
  // Regression pin: the monitor ROM's command-dispatch round. A change here
  // means the resident firmware's timing changed — bench/wcet_validation has
  // verified 47 is exact (observed == static on the ISS).
  for (const auto& fw : corpus::shipped_firmware()) {
    if (fw.name != "monitor_rom") continue;
    const auto w = analyze_wcet(fw);
    const auto* loop = find_kind(w, FunctionWcet::Kind::MainLoop);
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->cycles, 47);
    EXPECT_EQ(w.uart_frame_bits, 10);  // mode 1
    return;
  }
  FAIL() << "monitor_rom missing from the corpus";
}

TEST(Corpus, TelemetryMonitorInferredRoundIsPinned) {
  // The telemetry monitor's delay loops carry no annotations on purpose:
  // this pins the DJNZ/CJNE inference on real firmware (60 × (500 + 3) plus
  // the service code; ISS-verified exact by the validation bench).
  for (const auto& fw : corpus::shipped_firmware()) {
    if (fw.name != "telemetry_monitor") continue;
    const auto w = analyze_wcet(fw);
    const auto* loop = find_kind(w, FunctionWcet::Kind::MainLoop);
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->cycles, 30214);
    return;
  }
  FAIL() << "telemetry_monitor missing from the corpus";
}

// ---- negative fixture + unresolved jumps ------------------------------------

TEST(Fixtures, UnboundedLoopAsmFailsTimingButPassesFirmwareLint) {
  std::ifstream in(std::string(ASCP_FIXTURE_DIR) + "/unbounded_loop.asm");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const FirmwareImage fw = make_fw(ss.str(), "unbounded_loop.asm");
  EXPECT_TRUE(check_firmware(fw).clean());  // structurally fine
  const auto w = analyze_wcet(fw);
  EXPECT_FALSE(w.report.clean());
  EXPECT_TRUE(w.report.mentions("unbounded loop"));
}

TEST(FirmwareLint, IndirectJumpIsFlaggedAsUnresolved) {
  const FirmwareImage fw = make_fw("        MOV A,#2\n"
                                   "        MOV DPTR,#table\n"
                                   "        JMP @A+DPTR\n"
                                   "table:  SJMP table\n");
  const Report r = check_firmware(fw);
  EXPECT_TRUE(r.mentions("unresolved-jump"));
}

}  // namespace
}  // namespace ascp::analysis
