// Tests for fx::Fixed — the bit-true arithmetic every hardwired DSP block
// relies on. Saturation, rounding and format-conversion behaviour must match
// what a synthesized datapath does.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/fixed.hpp"

namespace ascp::fx {
namespace {

TEST(Fixed, DefaultIsZero) {
  Q1_14 a;
  EXPECT_EQ(a.raw(), 0);
  EXPECT_DOUBLE_EQ(a.to_double(), 0.0);
}

TEST(Fixed, RoundTripExactValues) {
  // Values on the LSB grid survive the double round trip exactly.
  for (double v : {0.0, 0.5, -0.5, 1.0, -1.0, 0.25, 1.25, -1.75}) {
    EXPECT_DOUBLE_EQ(Q1_14(v).to_double(), v) << v;
  }
}

TEST(Fixed, QuantizationErrorBoundedByHalfLsb) {
  for (double v = -1.9; v < 1.9; v += 0.01713) {
    const double err = std::abs(Q1_14(v).to_double() - v);
    EXPECT_LE(err, Q1_14::kLsb / 2.0 + 1e-15) << v;
  }
}

TEST(Fixed, SaturatesAtPositiveRail) {
  const Q1_14 big(100.0);
  EXPECT_EQ(big.raw(), Q1_14::kRawMax);
  EXPECT_NEAR(big.to_double(), 2.0, 2 * Q1_14::kLsb);
}

TEST(Fixed, SaturatesAtNegativeRail) {
  const Q1_14 big(-100.0);
  EXPECT_EQ(big.raw(), Q1_14::kRawMin);
  EXPECT_DOUBLE_EQ(big.to_double(), -2.0);
}

TEST(Fixed, AdditionSaturates) {
  const auto sum = Q1_14(1.5) + Q1_14(1.5);
  EXPECT_EQ(sum.raw(), Q1_14::kRawMax);
}

TEST(Fixed, SubtractionSaturates) {
  const auto diff = Q1_14(-1.5) - Q1_14(1.5);
  EXPECT_EQ(diff.raw(), Q1_14::kRawMin);
}

TEST(Fixed, NegationOfMinSaturates) {
  // -(-2.0) = +2.0 is not representable; two's complement hardware with
  // saturation clamps to kRawMax instead of wrapping back to the min.
  const auto neg = -Q1_14::min();
  EXPECT_EQ(neg.raw(), Q1_14::kRawMax);
}

TEST(Fixed, MultiplicationBasic) {
  const auto p = Q1_14(0.5) * Q1_14(0.5);
  EXPECT_NEAR(p.to_double(), 0.25, Q1_14::kLsb);
}

TEST(Fixed, MultiplicationSign) {
  const auto p = Q1_14(-0.5) * Q1_14(1.5);
  EXPECT_NEAR(p.to_double(), -0.75, Q1_14::kLsb);
}

TEST(Fixed, MultiplicationSaturates) {
  const auto p = Q1_14(1.9) * Q1_14(1.9);
  EXPECT_EQ(p.raw(), Q1_14::kRawMax);
}

TEST(Fixed, WrapOverflowWrapsExactly) {
  using Wrap = Fixed<1, 14, Round::Nearest, Overflow::Wrap>;
  // kRawMax + 1 wraps to kRawMin in modular arithmetic.
  const auto wrapped = Wrap::from_raw(Wrap::kRawMax + 1);
  EXPECT_EQ(wrapped.raw(), Wrap::kRawMin);
}

TEST(Fixed, ConversionWideningPreservesValue) {
  const Q1_14 a(0.7371);
  const auto b = a.convert<1, 22>();
  EXPECT_DOUBLE_EQ(b.to_double(), a.to_double());
}

TEST(Fixed, ConversionNarrowingRounds) {
  const Q1_22 a(0.5 + Q1_22::kLsb * 3);  // just above 0.5 on the fine grid
  const auto b = a.convert<1, 14>();
  EXPECT_NEAR(b.to_double(), 0.5, Q1_14::kLsb);
}

TEST(Fixed, TruncateRoundingBiasesDown) {
  using Trunc = Fixed<1, 4, Round::Truncate>;
  // 0.99 in Q1.4 truncates to 0.9375 (15/16), never rounds up to 1.0.
  EXPECT_DOUBLE_EQ(Trunc(0.99).to_double(), 0.9375);
}

TEST(Fixed, NearestRoundingRoundsHalfUp) {
  using Near = Fixed<1, 4>;
  // 0.96875 = 15.5/16 rounds to 16/16 = 1.0.
  EXPECT_DOUBLE_EQ(Near(0.96875).to_double(), 1.0);
}

TEST(Fixed, OrderingFollowsValue) {
  EXPECT_LT(Q1_14(-0.5), Q1_14(0.25));
  EXPECT_GT(Q1_14(1.0), Q1_14(0.9999));
  EXPECT_EQ(Q1_14(0.5), Q1_14(0.5));
}

TEST(Fixed, LsbMatchesFormat) {
  EXPECT_DOUBLE_EQ(Q1_14::kLsb, std::pow(2.0, -14));
  EXPECT_DOUBLE_EQ(Q4_18::kLsb, std::pow(2.0, -18));
}

TEST(Fixed, AccumulationStaysExactOnGrid) {
  // Sums of grid values are exact until saturation — key property for
  // integrators in the loop filters.
  Q4_18 acc;
  for (int i = 0; i < 1000; ++i) acc += Q4_18(0.001953125);  // 2^-9, on grid
  EXPECT_DOUBLE_EQ(acc.to_double(), 1000 * 0.001953125);
}

// Property sweep: (a+b) saturating addition never exceeds rails and is exact
// when in range.
class FixedAddProperty : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FixedAddProperty, SaturatingAddIsClampOfExactSum) {
  const auto [av, bv] = GetParam();
  const Q1_14 a(av), b(bv);
  const double exact = a.to_double() + b.to_double();
  const double expect = std::clamp(exact, Q1_14::min().to_double(), Q1_14::max().to_double());
  EXPECT_NEAR((a + b).to_double(), expect, Q1_14::kLsb);
}

INSTANTIATE_TEST_SUITE_P(Pairs, FixedAddProperty,
                         ::testing::Values(std::pair{0.1, 0.2}, std::pair{1.5, 1.5},
                                           std::pair{-1.5, -1.5}, std::pair{1.999, 0.001},
                                           std::pair{-2.0, 2.0}, std::pair{0.33333, -0.66666},
                                           std::pair{1.0, -1.0}, std::pair{1.9999, 1.9999}));

}  // namespace
}  // namespace ascp::fx
