#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"

namespace ascp {
namespace {

TEST(Math, SincAtZeroIsOne) { EXPECT_DOUBLE_EQ(sinc(0.0), 1.0); }

TEST(Math, SincAtIntegersIsZero) {
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(sinc(k), 0.0, 1e-15);
    EXPECT_NEAR(sinc(-k), 0.0, 1e-15);
  }
}

TEST(Math, PolyvalHorner) {
  const std::vector<double> c{1.0, 2.0, 3.0};  // 1 + 2x + 3x²
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(polyval(c, -2.0), 9.0);
}

TEST(Math, PolyvalEmptyIsZero) {
  EXPECT_DOUBLE_EQ(polyval(std::vector<double>{}, 3.0), 0.0);
}

TEST(Math, HannWindowEndpointsAndPeak) {
  const auto w = hann_window(65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Math, HammingWindowEndpoints) {
  const auto w = hamming_window(33);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Math, WindowsAreSymmetric) {
  for (const auto& w : {hann_window(31), hamming_window(31), blackman_window(31),
                        kaiser_window(31, 8.0)}) {
    for (std::size_t i = 0; i < w.size() / 2; ++i)
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << i;
  }
}

TEST(Math, BesselI0KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-9);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-6);
}

TEST(Math, FitLineRecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i - 7.0);
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.offset, -7.0, 1e-10);
  EXPECT_NEAR(fit.max_abs_residual, 0.0, 1e-10);
}

TEST(Math, FitLineResidualsOfParabola) {
  // y = x² over [-1,1]: best line is y = 1/3 (slope 0); max residual 2/3.
  std::vector<double> x, y;
  for (int i = 0; i <= 200; ++i) {
    const double xv = -1.0 + i * 0.01;
    x.push_back(xv);
    y.push_back(xv * xv);
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.offset, 1.0 / 3.0, 0.01);
  EXPECT_NEAR(fit.max_abs_residual, 2.0 / 3.0, 0.02);
}

TEST(Math, MeanStddevRms) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(rms(v), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(Math, WrapPhaseIntoRange) {
  EXPECT_NEAR(wrap_phase(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_phase(3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(-3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(kTwoPi), 0.0, 1e-12);
  for (double p = -20.0; p < 20.0; p += 0.37) {
    const double w = wrap_phase(p);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(p), 1e-9);
  }
}

TEST(Math, Interp1InterpolatesAndClamps) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(interp1(x, y, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(interp1(x, y, 9.0), 40.0);   // clamp high
}

TEST(Math, DbConversions) {
  EXPECT_DOUBLE_EQ(db20(10.0), 20.0);
  EXPECT_DOUBLE_EQ(db10(10.0), 10.0);
  EXPECT_NEAR(from_db20(-3.0), 0.7079457843841379, 1e-12);
}

}  // namespace
}  // namespace ascp
