#include <gtest/gtest.h>

#include <cmath>

#include "common/quantizer.hpp"

namespace ascp {
namespace {

TEST(Quantizer, LsbMatchesDefinition) {
  const Quantizer q(12, 2.5);
  EXPECT_DOUBLE_EQ(q.lsb(), 2.5 / 2048.0);
}

TEST(Quantizer, ZeroMapsToZero) {
  const Quantizer q(12, 2.5);
  EXPECT_EQ(q.to_code(0.0), 0);
  EXPECT_DOUBLE_EQ(q.quantize(0.0), 0.0);
}

TEST(Quantizer, RoundTripErrorBounded) {
  const Quantizer q(10, 1.0);
  for (double v = -0.99; v < 0.99; v += 0.00719) {
    EXPECT_LE(std::abs(q.quantize(v) - v), q.lsb() / 2.0 + 1e-12) << v;
  }
}

TEST(Quantizer, SaturatesSymmetrically) {
  const Quantizer q(8, 1.0);
  EXPECT_EQ(q.to_code(10.0), 127);
  EXPECT_EQ(q.to_code(-10.0), -128);
}

TEST(Quantizer, CodesAreMonotone) {
  const Quantizer q(6, 1.0);
  std::int64_t prev = q.to_code(-1.1);
  for (double v = -1.1; v <= 1.1; v += 0.003) {
    const auto c = q.to_code(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Quantizer, BitsClampedToSaneRange) {
  const Quantizer q(1, 1.0);  // silently promoted to 2 bits
  EXPECT_EQ(q.bits(), 2);
}

// Parametrized: quantization noise power ≈ LSB²/12 for a full-range ramp.
class QuantNoise : public ::testing::TestWithParam<int> {};

TEST_P(QuantNoise, NoisePowerMatchesLsbSquaredOver12) {
  const int bits = GetParam();
  const Quantizer q(bits, 1.0);
  double sum_sq = 0.0;
  int n = 0;
  for (double v = -0.95; v < 0.95; v += 1e-4, ++n) {
    const double e = q.quantize(v) - v;
    sum_sq += e * e;
  }
  const double measured = sum_sq / n;
  const double expected = q.lsb() * q.lsb() / 12.0;
  EXPECT_NEAR(measured / expected, 1.0, 0.1) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantNoise, ::testing::Values(8, 10, 12, 14));

}  // namespace
}  // namespace ascp
