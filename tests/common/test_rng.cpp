#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/spectrum.hpp"

namespace ascp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  std::vector<double> v(100000);
  for (auto& x : v) x = r.uniform();
  EXPECT_NEAR(mean(v), 0.5, 0.01);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng r(13);
  std::vector<double> v(200000);
  for (auto& x : v) x = r.gaussian();
  EXPECT_NEAR(mean(v), 0.0, 0.02);
  EXPECT_NEAR(stddev(v), 1.0, 0.02);
}

TEST(Rng, GaussianSigmaScales) {
  Rng r(17);
  std::vector<double> v(100000);
  for (auto& x : v) x = r.gaussian(3.5);
  EXPECT_NEAR(stddev(v), 3.5, 0.1);
}

TEST(Rng, GaussianTailsPresent) {
  // A correct normal source produces |x| > 3 about 0.27 % of the time.
  Rng r(19);
  int tail = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (std::abs(r.gaussian()) > 3.0) ++tail;
  const double frac = static_cast<double>(tail) / n;
  EXPECT_NEAR(frac, 0.0027, 0.001);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  // Correlation between forked streams should be negligible.
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  EXPECT_LT(std::abs(acc / n), 1e-3);
}

TEST(FlickerNoise, RmsApproximatesRequested) {
  Rng r(29);
  FlickerNoise f(r, 2.0, 16);
  std::vector<double> v(1 << 18);
  for (auto& x : v) x = f.next();
  EXPECT_NEAR(rms(v), 2.0, 0.5);
}

TEST(FlickerNoise, SpectrumFallsWithFrequency) {
  // The defining property: PSD at low frequency well above PSD at high
  // frequency, roughly 10 dB per decade (1/f).
  Rng r(31);
  FlickerNoise f(r, 1.0, 16);
  std::vector<double> v(1 << 18);
  for (auto& x : v) x = f.next();
  const auto psd = welch_psd(v, 1.0, 1 << 12);
  const double low = psd.band_mean(0.001, 0.004);
  const double high = psd.band_mean(0.1, 0.4);
  EXPECT_GT(low, high * 8.0);  // ≥ ~9 dB over two decades
}

}  // namespace
}  // namespace ascp
