#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/spectrum.hpp"

namespace ascp {
namespace {

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<std::complex<double>> d(16, 0.0);
  d[0] = 1.0;
  fft(d);
  for (const auto& v : d) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 256;
  std::vector<std::complex<double>> d(n);
  const int k = 37;
  for (std::size_t i = 0; i < n; ++i)
    d[i] = std::cos(kTwoPi * k * static_cast<double>(i) / n);
  fft(d);
  EXPECT_NEAR(std::abs(d[k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(d[n - k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(d[k + 5]), 0.0, 1e-9);
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng r(3);
  const std::size_t n = 128;
  std::vector<std::complex<double>> d(n), orig(n);
  for (auto& v : d) v = {r.gaussian(), r.gaussian()};
  orig = d;
  fft(d);
  fft(d, /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(d[i].real() / n, orig[i].real(), 1e-10);
    EXPECT_NEAR(d[i].imag() / n, orig[i].imag(), 1e-10);
  }
}

TEST(Fft, LinearityHolds) {
  Rng r(5);
  const std::size_t n = 64;
  std::vector<std::complex<double>> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = r.gaussian();
    b[i] = r.gaussian();
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
}

TEST(Welch, WhiteNoisePsdIsFlatAtCorrectLevel) {
  // White noise with sigma² = 4 sampled at fs has one-sided density
  // 2·sigma²/fs; Welch should recover it within a few percent.
  Rng r(7);
  const double fs = 1000.0;
  const double sigma = 2.0;
  std::vector<double> x(1 << 16);
  for (auto& v : x) v = r.gaussian(sigma);
  const auto psd = welch_psd(x, fs, 1 << 10);
  const double density = psd.band_mean(50.0, 450.0);
  EXPECT_NEAR(density, 2.0 * sigma * sigma / fs, 0.05 * 2.0 * sigma * sigma / fs);
}

TEST(Welch, ParsevalVarianceMatches) {
  Rng r(9);
  std::vector<double> x(1 << 15);
  for (auto& v : x) v = r.gaussian(1.5);
  const auto psd = welch_psd(x, 100.0, 1 << 9);
  // Integral of PSD over frequency ≈ variance.
  double integral = 0.0;
  const double df = psd.freq[1] - psd.freq[0];
  for (double p : psd.power) integral += p * df;
  EXPECT_NEAR(integral, 1.5 * 1.5, 0.15);
}

TEST(Welch, TonePeaksAtToneFrequency) {
  const double fs = 1000.0, f0 = 123.0;
  std::vector<double> x(1 << 14);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(kTwoPi * f0 * i / fs);
  const auto psd = welch_psd(x, fs, 1 << 10);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i)
    if (psd.power[i] > psd.power[peak]) peak = i;
  EXPECT_NEAR(psd.freq[peak], f0, fs / (1 << 10) * 1.5);
}

TEST(Welch, TooShortSignalGivesEmpty) {
  std::vector<double> x(10, 1.0);
  const auto psd = welch_psd(x, 100.0, 64);
  EXPECT_TRUE(psd.freq.empty());
}

TEST(ToneEstimate, RecoversAmplitudeAndPhase) {
  const double fs = 2000.0, f0 = 100.0, amp = 0.75, ph = 0.6;
  std::vector<double> x(4000);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = amp * std::cos(kTwoPi * f0 * i / fs + ph);
  const auto est = estimate_tone(x, fs, f0);
  EXPECT_NEAR(est.amplitude, amp, 0.01);
  EXPECT_NEAR(est.phase, ph, 0.01);
}

TEST(ToneEstimate, RejectsOtherFrequencies) {
  const double fs = 2000.0;
  std::vector<double> x(4000);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(kTwoPi * 400.0 * i / fs);
  const auto est = estimate_tone(x, fs, 100.0);
  EXPECT_NEAR(est.amplitude, 0.0, 0.01);
}

}  // namespace
}  // namespace ascp
