#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/trace.hpp"

namespace ascp {
namespace {

TEST(Trace, OpenPushRead) {
  TraceRecorder rec;
  rec.open("sig", 0.001);
  rec.push("sig", 1.0);
  rec.push("sig", 2.0);
  const auto& ch = rec.channel("sig");
  ASSERT_EQ(ch.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(ch.samples[0], 1.0);
  EXPECT_DOUBLE_EQ(ch.samples[1], 2.0);
  EXPECT_DOUBLE_EQ(ch.dt, 0.001);
}

TEST(Trace, DecimationKeepsEveryNth) {
  TraceRecorder rec;
  rec.open("d", 0.5, 4);
  for (int i = 0; i < 16; ++i) rec.push("d", i);
  const auto& ch = rec.channel("d");
  ASSERT_EQ(ch.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(ch.samples[0], 0.0);
  EXPECT_DOUBLE_EQ(ch.samples[1], 4.0);
  EXPECT_DOUBLE_EQ(ch.dt, 2.0);  // 0.5 · 4
}

TEST(Trace, PushToUnknownChannelThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.push("nope", 1.0), std::out_of_range);
}

TEST(Trace, ReadUnknownChannelThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.channel("nope"), std::out_of_range);
}

TEST(Trace, ReopenDoesNotResetChannel) {
  TraceRecorder rec;
  rec.open("s", 1.0);
  rec.push("s", 5.0);
  rec.open("s", 2.0);  // second open is a no-op
  EXPECT_EQ(rec.channel("s").samples.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.channel("s").dt, 1.0);
}

TEST(Trace, NamesSortedAndComplete) {
  TraceRecorder rec;
  rec.open("b", 1.0);
  rec.open("a", 1.0);
  const auto names = rec.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(Trace, CsvWritesAllChannels) {
  TraceRecorder rec;
  rec.open("x", 0.1);
  rec.push("x", 3.25);
  const std::string path = ::testing::TempDir() + "/ascp_trace_test.csv";
  rec.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("# channel: x"), std::string::npos);
  EXPECT_NE(body.find("3.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, AsciiRenderContainsHeaderAndStars) {
  TraceRecorder rec;
  rec.open("w", 0.01);
  for (int i = 0; i < 100; ++i) rec.push("w", std::sin(0.1 * i));
  const auto art = rec.render_ascii("w", 40, 8);
  EXPECT_NE(art.find("w  ["), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
}

TEST(Trace, CsvWithZeroChannelsIsValidFile) {
  TraceRecorder rec;
  const std::string path = ::testing::TempDir() + "/ascp_trace_empty.csv";
  rec.write_csv(path);  // must not throw and must leave a readable file
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("# trace: 0 channel(s)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, CsvChannelWithNoSamplesKeepsHeader) {
  TraceRecorder rec;
  rec.open("quiet", 0.25);  // opened but never pushed
  const std::string path = ::testing::TempDir() + "/ascp_trace_quiet.csv";
  rec.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("# channel: quiet"), std::string::npos);
  EXPECT_NE(body.find("t,quiet"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, AsciiConstantChannelRendersWithoutDivideByZero) {
  TraceRecorder rec;
  rec.open("flat", 0.001);
  for (int i = 0; i < 50; ++i) rec.push("flat", 2.5);
  const auto art = rec.render_ascii("flat", 32, 6);  // hi == lo internally
  EXPECT_NE(art.find("flat  ["), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
  for (const char ch : art) {
    EXPECT_TRUE(std::isprint(static_cast<unsigned char>(ch)) || ch == '\n') << int(ch);
  }
}

TEST(Trace, AsciiEmptyChannelReturnsEmptyString) {
  TraceRecorder rec;
  rec.open("never", 1.0);
  EXPECT_TRUE(rec.render_ascii("never", 40, 8).empty());
}

TEST(Trace, ClearRemovesEverything) {
  TraceRecorder rec;
  rec.open("x", 1.0);
  rec.clear();
  EXPECT_FALSE(rec.has("x"));
}

}  // namespace
}  // namespace ascp
