// Regression pins for latent-bug audits driven by the conformance fuzzer
// (ISSUE PR-5 satellite): NCO phase-wrap bit-identity, the open-loop batched
// sense path against the sample-serial path with a run ending mid-block,
// profiler neutrality under sampled wall-timing, and the cold-temperature
// supervisor-arming corner that set the fault generator's injection floor.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/trace.hpp"
#include "core/gyro_system.hpp"
#include "dsp/nco.hpp"
#include "obs/observability.hpp"
#include "platform/scheduler.hpp"
#include "safety/supervisor.hpp"
#include "sensor/environment.hpp"

namespace ascp {
namespace {

// The fuzzer's first audit target: the NCO's uint32 accumulator wraps many
// times per block at high f0/fs; blocked and per-sample generation must agree
// to the bit through every wrap.
TEST(ConformanceRegressions, NcoBlockPathBitIdenticalThroughPhaseWraps) {
  dsp::Nco scalar(240e3, 100e3), blocked(240e3, 100e3);  // wraps every ~2.4 samples
  constexpr int kN = 4096;
  std::vector<double> want_s(kN), want_c(kN), got_s(kN), got_c(kN);
  for (int k = 0; k < kN; ++k) {
    want_s[static_cast<std::size_t>(k)] = scalar.step();
    want_c[static_cast<std::size_t>(k)] = scalar.cosine();
  }
  blocked.step_block(got_s, got_c);
  for (int k = 0; k < kN; ++k) {
    ASSERT_EQ(want_s[static_cast<std::size_t>(k)], got_s[static_cast<std::size_t>(k)]) << k;
    ASSERT_EQ(want_c[static_cast<std::size_t>(k)], got_c[static_cast<std::size_t>(k)]) << k;
  }
  // Both must land on the identical accumulator, so the next sample agrees too.
  ASSERT_EQ(scalar.step(), blocked.step());
}

// Second audit target: GyroSystem's open-loop batched sense path. A trace
// tap is a read-only observer that forces the sample-serial path, so the two
// runs must produce bit-identical decimated outputs — including when the run
// ends mid-CIC-block (240000 × 0.0501 = 12024 samples; 12024 mod 128 = 120
// pending samples flushed at run end without emitting a partial output).
TEST(ConformanceRegressions, BatchedSensePathMatchesSerialWhenRunEndsMidBlock) {
  core::GyroSystemConfig cfg = core::default_gyro_system(core::Fidelity::Ideal);
  cfg.sense.mode = core::SenseMode::OpenLoop;
  const auto rate = sensor::Profile::sine(80.0, 20.0);
  const auto temp = sensor::Profile::constant(25.0);
  constexpr double kDur = 0.0501;

  core::GyroSystem batched(cfg);
  batched.power_on(7);
  std::vector<double> out_batched;
  batched.run(rate, temp, kDur, &out_batched);

  core::GyroSystem serial(cfg);
  TraceRecorder trace;
  serial.set_trace(&trace, 16);
  serial.power_on(7);
  std::vector<double> out_serial;
  serial.run(rate, temp, kDur, &out_serial);

  ASSERT_FALSE(out_batched.empty());
  ASSERT_EQ(out_batched.size(), out_serial.size());
  for (std::size_t k = 0; k < out_batched.size(); ++k)
    ASSERT_EQ(out_batched[k], out_serial[k]) << "sample " << k;
  ASSERT_EQ(batched.last_output(), serial.last_output());
}

// The profiler fix that the fuzzer's smoke budget forced: wall-timing is
// sampled (every Nth firing per task), but invocation counts stay exact and
// the sampled costs are scaled by the stride so accumulated wall estimates
// stay unbiased.
TEST(ConformanceRegressions, SampledProfilerKeepsExactInvocationCounts) {
  platform::Scheduler sched(240e3);
  long fired = 0;
  sched.every(1, [&] { ++fired; }, "dsp");
  sched.every(128, [&] {}, "decim");

  obs::TaskProfiler prof;  // default stride 0 = auto
  sched.set_profiler(&prof);
  sched.run_ticks(24000);

  ASSERT_EQ(fired, 24000);  // profiling never changes the firing pattern
  ASSERT_EQ(prof.task_count(), 2u);
  // Invocation counts are exact (divider-128 task fires at tick 0, so 188
  // firings in 24000 ticks)...
  EXPECT_EQ(prof.stats()[0].invocations, 24000u);
  EXPECT_EQ(prof.stats()[1].invocations, 188u);
  // ...while only a sampled subset was clocked. Auto stride for a 240 kHz
  // task targets kAutoSampleHz: 240000 / 2000 = 120 → 24000/120 timed.
  EXPECT_EQ(prof.timed_invocations(0), 24000u / 120u);
  // The 1.875 kHz decimator fires below the sample target → stride 1 (exact).
  EXPECT_EQ(prof.timed_invocations(1), 188u);
  EXPECT_GT(prof.stats()[0].wall_seconds, 0.0);
}

TEST(ConformanceRegressions, ProfilerWallEstimateScalesSampledCostByStride) {
  obs::TaskProfiler prof;
  const int id = prof.register_task("t", 1, 0);
  prof.record(id, 0, 1e-3, 16.0);  // one timed firing standing in for 16
  EXPECT_EQ(prof.stats()[static_cast<std::size_t>(id)].invocations, 1u);
  EXPECT_EQ(prof.timed_invocations(id), 1u);
  EXPECT_DOUBLE_EQ(prof.stats()[static_cast<std::size_t>(id)].wall_seconds, 1.6e-2);
}

TEST(ConformanceRegressions, ExactStrideTimesEveryInvocation) {
  platform::Scheduler sched(240e3);
  sched.every(1, [] {}, "dsp");
  obs::TaskProfiler prof;
  prof.set_sample_stride(1);
  sched.set_profiler(&prof);
  sched.run_ticks(5000);
  EXPECT_EQ(prof.stats()[0].invocations, 5000u);
  EXPECT_EQ(prof.timed_invocations(0), 5000u);
}

// Attaching observability must not perturb the numeric path: same seed, same
// stimulus, bit-identical outputs with and without the sink (the conformance
// oracle relies on this when it hashes instrumented runs).
TEST(ConformanceRegressions, ObservabilityAttachIsOutputNeutral) {
  core::GyroSystemConfig cfg = core::default_gyro_system(core::Fidelity::Ideal);
  const auto rate = sensor::Profile::sine(100.0, 15.0);
  const auto temp = sensor::Profile::constant(25.0);

  core::GyroSystem plain(cfg);
  plain.power_on(3);
  std::vector<double> out_plain;
  plain.run(rate, temp, 0.06, &out_plain);

  core::GyroSystem observed(cfg);
  obs::Observability o;
  observed.set_observability(o.sink());
  observed.power_on(3);
  std::vector<double> out_observed;
  observed.run(rate, temp, 0.06, &out_observed);

  ASSERT_EQ(out_plain.size(), out_observed.size());
  for (std::size_t k = 0; k < out_plain.size(); ++k)
    ASSERT_EQ(out_plain[k], out_observed[k]) << "sample " << k;
  // And the profiler actually saw the run.
  EXPECT_GT(o.tasks.stats().size(), 0u);
  EXPECT_GT(o.tasks.stats()[0].invocations, 0u);
}

// The corner that moved the fault generator's injection floor to 0.65 s:
// at a 10 °C cold soak the drive resonance shift slows PLL acquisition, and
// the supervisor must still be armed before the earliest injection instant.
TEST(ConformanceRegressions, SupervisorArmsBeforeInjectionFloorAtColdCorner) {
  core::GyroSystemConfig cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_safety = true;
  core::GyroSystem g(cfg);
  g.power_on(1);
  std::vector<double> out;
  g.run(sensor::Profile::constant(30.0), sensor::Profile::constant(10.0), 0.65, &out);
  ASSERT_NE(g.supervisor(), nullptr);
  EXPECT_TRUE(g.supervisor()->armed());
  EXPECT_TRUE(g.locked());
}

}  // namespace
}  // namespace ascp
