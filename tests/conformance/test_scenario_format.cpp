// Conformance-layer unit tests: `.scenario` serialization exactness, the
// generator's legality contract against the platform's declared register
// fields, and the shrinker's minimization guarantees.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "conformance/generator.hpp"
#include "conformance/scenario.hpp"
#include "conformance/shrink.hpp"
#include "core/gyro_system.hpp"

namespace ascp::conformance {
namespace {

constexpr double kDspFs = 240e3;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(ScenarioFormat, TextRoundTripIsByteStable) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario s = generate_scenario(seed);
    const std::string text = to_text(s);
    const Scenario back = from_text(text);
    EXPECT_EQ(to_text(back), text) << "seed " << seed;
  }
}

TEST(ScenarioFormat, RoundTripPreservesFloatBitPatterns) {
  // Values that lose digits under naive %g printing must still come back
  // bit-identical — replay determinism depends on it.
  Scenario s;
  s.seed = 0xDEADBEEFCAFEF00Dull;
  s.cls = ScenarioClass::DiffIdeal;
  s.duration_s = 0.1 + 0.2;  // 0.30000000000000004
  s.quad_scale = 1.0 / 3.0;
  s.drift_scale = 2.0 / 7.0;
  s.output_bw_hz = 33.333333333333336;
  s.rate.push_back({SegKind::Chirp, 0.3, 0.1234567890123456789, -1e-17, 1.5, 29.999999999999996});
  s.temp.push_back({SegKind::Ramp, 0.3, -39.99999999999999, 85.0, 0.0, 0.0});
  s.bursts.push_back({0.012345678901234567, 0.01, 99.99999999999999, 1234.5678901234567});
  s.faults.push_back({FaultKind::QuadratureStep, 160001, 12345, 3.0000000000000004e6});
  s.regs.push_back({true, core::reg::kAfePgaPrimary, 0x28});

  const Scenario back = from_text(to_text(s));
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_TRUE(same_bits(back.duration_s, s.duration_s));
  EXPECT_TRUE(same_bits(back.quad_scale, s.quad_scale));
  EXPECT_TRUE(same_bits(back.drift_scale, s.drift_scale));
  EXPECT_TRUE(same_bits(back.output_bw_hz, s.output_bw_hz));
  ASSERT_EQ(back.rate.size(), 1u);
  EXPECT_TRUE(same_bits(back.rate[0].a, s.rate[0].a));
  EXPECT_TRUE(same_bits(back.rate[0].b, s.rate[0].b));
  EXPECT_TRUE(same_bits(back.rate[0].f1, s.rate[0].f1));
  ASSERT_EQ(back.bursts.size(), 1u);
  EXPECT_TRUE(same_bits(back.bursts[0].t0, s.bursts[0].t0));
  EXPECT_TRUE(same_bits(back.bursts[0].freq, s.bursts[0].freq));
  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].kind, FaultKind::QuadratureStep);
  EXPECT_EQ(back.faults[0].inject_at, 160001);
  EXPECT_EQ(back.faults[0].clear_after, 12345);
  EXPECT_TRUE(same_bits(back.faults[0].param, s.faults[0].param));
  ASSERT_EQ(back.regs.size(), 1u);
  EXPECT_TRUE(back.regs[0].afe);
  EXPECT_EQ(back.regs[0].addr, core::reg::kAfePgaPrimary);
  EXPECT_EQ(back.regs[0].value, 0x28);
}

TEST(ScenarioFormat, TraceSegmentRoundTripsWithBitExactSamples) {
  Scenario s;
  s.cls = ScenarioClass::Invariant;
  s.duration_s = 0.05;
  Segment g;
  g.kind = SegKind::Trace;
  g.duration = 0.05;
  g.f0 = 1000.0;  // sample rate
  g.samples = {0.1 + 0.2, 1.0 / 3.0, -29.999999999999996, 1e-17};
  s.rate.push_back(g);

  const std::string text = to_text(s);
  EXPECT_NE(text.find("rate trace"), std::string::npos);
  const Scenario back = from_text(text);
  ASSERT_EQ(back.rate.size(), 1u);
  ASSERT_EQ(back.rate[0].kind, SegKind::Trace);
  ASSERT_EQ(back.rate[0].samples.size(), g.samples.size());
  for (std::size_t i = 0; i < g.samples.size(); ++i)
    EXPECT_TRUE(same_bits(back.rate[0].samples[i], g.samples[i])) << i;
  EXPECT_EQ(to_text(back), text);
}

TEST(ScenarioFormat, TraceSegmentEvaluatesWithHoldSemantics) {
  Scenario s;
  s.duration_s = 1.0;
  Segment g;
  g.kind = SegKind::Trace;
  g.duration = 1.0;
  g.f0 = 4.0;  // 4 samples/s → each covers 0.25 s
  g.samples = {1.0, 2.0, 3.0};
  s.rate.push_back(g);
  const auto p = rate_profile(s);
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(0.26), 2.0);
  EXPECT_DOUBLE_EQ(p.at(0.51), 3.0);
  EXPECT_DOUBLE_EQ(p.at(0.9), 3.0);   // past the recording: hold last
  EXPECT_DOUBLE_EQ(p.at(10.0), 3.0);  // past the segment: hold last
}

TEST(ScenarioFormat, TraceSegmentTruncatedSampleListRejected) {
  Scenario s;
  Segment g;
  g.kind = SegKind::Trace;
  g.f0 = 100.0;
  g.samples = {1.0, 2.0, 3.0};
  s.rate.push_back(g);
  std::string text = to_text(s);
  // Drop the final sample but keep the declared count of 3.
  const auto pos = text.rfind(" 3\n");
  ASSERT_NE(pos, std::string::npos);
  text.erase(pos, 2);
  EXPECT_THROW(from_text(text), std::runtime_error);
}

TEST(ScenarioFormat, MalformedInputThrowsWithDiagnostics) {
  EXPECT_THROW(from_text("this is not a scenario"), std::runtime_error);
  EXPECT_THROW(from_text("class no_such_class\n"), std::runtime_error);
  // A valid prefix with a corrupted record (before the terminating `end`)
  // must still be rejected; anything after `end` is ignored by design.
  Scenario s = generate_scenario(3);
  std::string text = to_text(s);
  text.insert(text.rfind("end\n"), "fault NotInTheCatalogue 0 -1 0\n");
  EXPECT_THROW(from_text(text), std::runtime_error);
  EXPECT_NO_THROW(from_text(to_text(s) + "trailing garbage after end\n"));
}

TEST(ScenarioGenerator, SameSeedYieldsByteIdenticalScenarios) {
  for (std::uint64_t seed : {1ull, 2026ull, 0x123456789ull}) {
    EXPECT_EQ(to_text(generate_scenario(seed)), to_text(generate_scenario(seed)))
        << "seed " << seed;
  }
}

TEST(ScenarioGenerator, DrawsStayInsideTheLegalOperatingSpace) {
  const GeneratorConfig cfg;
  // One platform instance provides the ground truth for register legality:
  // the declared writable field masks of both register files.
  core::GyroSystem g(core::default_gyro_system(core::Fidelity::Ideal));
  auto writable_mask = [](platform::RegisterFile& rf, std::uint16_t addr) -> std::uint16_t {
    const auto* fields = rf.fields_of(addr);
    if (!fields) return 0;
    std::uint16_t mask = 0;
    for (const auto& f : *fields)
      if (f.writable && !f.reserved)
        mask |= static_cast<std::uint16_t>(((1u << f.width) - 1u) << f.lsb);
    return mask;
  };

  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const Scenario s = generate_scenario(seed, cfg);
    ASSERT_GT(s.duration_s, 0.0) << "seed " << seed;
    ASSERT_GE(s.quad_scale, 0.5);
    ASSERT_LE(s.quad_scale, 1.5);
    ASSERT_GE(s.drift_scale, 0.5);
    ASSERT_LE(s.drift_scale, 1.5);
    ASSERT_GE(s.output_bw_hz, 25.0);
    ASSERT_LE(s.output_bw_hz, 75.0);

    for (const auto& seg : s.rate) {
      ASSERT_LE(std::abs(seg.a), cfg.max_base_dps) << "seed " << seed;
      ASSERT_LE(std::abs(seg.b), cfg.max_base_dps) << "seed " << seed;
    }
    for (const auto& seg : s.temp) {
      ASSERT_GE(seg.a, -40.0) << "seed " << seed;
      ASSERT_LE(seg.a, 85.0) << "seed " << seed;
      if (seg.kind == SegKind::Ramp) {
        ASSERT_GE(seg.b, -65.0) << "seed " << seed;  // -30 start − 25 swing floor
        ASSERT_LE(seg.b, 85.0) << "seed " << seed;
      }
    }
    for (const auto& b : s.bursts) {
      ASSERT_GE(b.t0, 0.0) << "seed " << seed;
      ASSERT_LE(b.t0 + b.duration, s.duration_s + 1e-9) << "seed " << seed;
      ASSERT_LE(b.amplitude, cfg.max_burst_dps) << "seed " << seed;
    }
    for (const auto& f : s.faults) {
      // Injection only after the supervisor's worst-case arming window.
      ASSERT_GE(f.inject_at, static_cast<long>(cfg.min_inject_s * kDspFs) - 1)
          << "seed " << seed << " " << fault_kind_name(f.kind);
      ASSERT_LT(static_cast<double>(f.inject_at) / kDspFs, s.duration_s) << "seed " << seed;
      if (fault_requires_full(f.kind))
        ASSERT_TRUE(s.full_fidelity) << "seed " << seed << " " << fault_kind_name(f.kind);
    }
    for (const auto& w : s.regs) {
      auto& rf = w.afe ? g.afe_regs() : g.regs();
      const std::uint16_t mask = writable_mask(rf, w.addr);
      ASSERT_NE(mask, 0) << "seed " << seed << " write to undeclared reg " << w.addr;
      ASSERT_EQ(w.value & ~mask, 0)
          << "seed " << seed << " value " << w.value << " spills outside writable field of reg "
          << w.addr;
    }
  }
}

TEST(ScenarioShrink, MinimizesToTheFailureRelevantCore) {
  // A deliberately noisy failing scenario whose "failure" only needs the
  // NcoPhaseJump fault: everything else must shrink away.
  Scenario s;
  s.cls = ScenarioClass::Fault;
  s.full_fidelity = false;
  s.duration_s = 1.2;
  s.quad_scale = 1.4;
  s.drift_scale = 0.6;
  s.datapath_bits = 20;
  s.rate = {{SegKind::Sine, 0.4, 50.0, 5.0, 7.0, 0.0},
            {SegKind::Chirp, 0.4, 30.0, 0.0, 2.0, 20.0},
            {SegKind::Constant, 0.4, 10.0, 0.0, 0.0, 0.0}};
  s.temp = {{SegKind::Constant, 0.6, 40.0, 0.0, 0.0, 0.0},
            {SegKind::Ramp, 0.6, 40.0, 60.0, 0.0, 0.0}};
  s.bursts = {{0.1, 0.01, 40.0, 300.0}, {0.3, 0.02, 60.0, 0.0}, {0.5, 0.01, 20.0, 800.0}};
  s.regs = {{false, core::reg::kSenseGain, 100}, {true, core::reg::kAfePgaPrimary, 30}};
  s.faults = {{FaultKind::ReferenceDrift, 168000, -1, -0.5},
              {FaultKind::NcoPhaseJump, 168000, -1, 1.5}};

  const auto still_fails = [](const Scenario& c) {
    for (const auto& f : c.faults)
      if (f.kind == FaultKind::NcoPhaseJump) return true;
    return false;
  };

  ShrinkStats stats;
  const Scenario min = shrink_scenario(s, still_fails, 200, &stats);

  EXPECT_TRUE(still_fails(min));  // the contract: the result still fails
  ASSERT_EQ(min.faults.size(), 1u);
  EXPECT_EQ(min.faults[0].kind, FaultKind::NcoPhaseJump);
  EXPECT_TRUE(min.bursts.empty());
  EXPECT_TRUE(min.regs.empty());
  EXPECT_EQ(min.rate.size(), 1u);
  EXPECT_EQ(min.temp.size(), 1u);
  EXPECT_EQ(min.rate[0].kind, SegKind::Constant);
  // Duration shrinks to the fault's detection window: inject (0.70 s) + 0.25.
  EXPECT_NEAR(min.duration_s, 168000.0 / kDspFs + 0.25, 1e-9);
  // MEMS corner and wordlength ablation neutralized.
  EXPECT_EQ(min.quad_scale, 1.0);
  EXPECT_EQ(min.drift_scale, 1.0);
  EXPECT_EQ(min.datapath_bits, 0);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_LE(stats.attempts, 200);
  // Stimulus bookkeeping stays consistent after all edits.
  EXPECT_GE(min.rate[0].duration, min.duration_s);
}

TEST(ScenarioShrink, TruncatesTraceSegmentsWhenTheFailureSurvives) {
  Scenario s;
  s.cls = ScenarioClass::Invariant;
  s.duration_s = 0.1;
  Segment g;
  g.kind = SegKind::Trace;
  g.duration = 0.1;
  g.f0 = 10000.0;
  g.samples.assign(1024, 5.0);
  s.rate.push_back(g);

  // Failure independent of the trace contents: the shrinker should halve the
  // sample list all the way to its floor of 2.
  const Scenario min = shrink_scenario(s, [](const Scenario&) { return true; }, 500);
  ASSERT_EQ(min.rate.size(), 1u);
  // The constant-simplify pass then collapses the trace to its first sample.
  EXPECT_EQ(min.rate[0].kind, SegKind::Constant);
  EXPECT_EQ(min.rate[0].a, 5.0);
  EXPECT_TRUE(min.rate[0].samples.empty());
}

TEST(ScenarioShrink, TraceCollapseUsesFirstSampleNotEmptySlots) {
  Scenario s;
  s.cls = ScenarioClass::Invariant;
  s.duration_s = 0.1;
  Segment g;
  g.kind = SegKind::Trace;
  g.duration = 0.1;
  g.f0 = 1000.0;
  g.samples = {42.0, 43.0};
  s.rate.push_back(g);

  // Only accept the collapse-to-constant edit (reject truncation first so the
  // level is taken from the untruncated head sample).
  const Scenario min =
      shrink_scenario(s, [](const Scenario& c) { return c.rate[0].kind != SegKind::Trace ||
                                                        c.rate[0].samples.size() == 2; }, 100);
  ASSERT_EQ(min.rate.size(), 1u);
  EXPECT_EQ(min.rate[0].kind, SegKind::Constant);
  EXPECT_EQ(min.rate[0].a, 42.0);
}

TEST(ScenarioShrink, RespectsTheAttemptBudget) {
  Scenario s = generate_scenario(11);
  s.bursts.assign(30, Burst{0.01, 0.005, 20.0, 100.0});
  int calls = 0;
  ShrinkStats stats;
  shrink_scenario(
      s, [&](const Scenario&) { ++calls; return true; }, 10, &stats);
  EXPECT_LE(calls, 10);
  EXPECT_EQ(stats.attempts, calls);
}

}  // namespace
}  // namespace ascp::conformance
