// Baseline comparator models: Table 2/3 shape checks, kept short (one
// device, coarse assertions); the full campaign lives in the benches.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/baselines.hpp"
#include "core/metrics.hpp"

namespace ascp::core {
namespace {

TEST(Baselines, AdxrsLocksAndMeasuresRate) {
  AnalogGyroBaseline dut(adxrs300_like());
  dut.power_on(1);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.4, nullptr);
  EXPECT_TRUE(dut.locked());
  const auto s = measure_sensitivity(dut, 25.0, 5, 0.15);
  // Trim tolerance ±8 %: slope within [4.4, 5.6] mV/°/s.
  EXPECT_GT(std::abs(s.mv_per_dps), 4.2);
  EXPECT_LT(std::abs(s.mv_per_dps), 5.8);
}

TEST(Baselines, AdxrsTurnOnIsFast) {
  // Low-Q element: turn-on well under 150 ms — an order of magnitude faster
  // than the high-Q platform (the Table 1 vs Table 2 contrast).
  AnalogGyroBaseline dut(adxrs300_like());
  // 10 mV tolerance (2 °/s): the broadband 0.1 °/s/√Hz floor makes tighter
  // windows flicker. Still 3–10× faster than the high-Q platform.
  EXPECT_LT(measure_turn_on(dut, 1, 25.0, 10e-3, 1.0), 0.2);
}

TEST(Baselines, AdxrsNullWithinTable2Window) {
  AnalogGyroBaseline dut(adxrs300_like());
  dut.power_on(2);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.4, nullptr);
  const double null = measure_null(dut, 25.0, 0.2, 0.3);
  EXPECT_GT(null, 2.2);
  EXPECT_LT(null, 2.8);
}

TEST(Baselines, AdxrsNullDriftsWithTemperature) {
  // No digital compensation: the null moves measurably over temperature.
  AnalogGyroBaseline dut(adxrs300_like());
  dut.power_on(1);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.4, nullptr);
  const double at25 = measure_null(dut, 25.0, 0.1, 0.2);
  const double at85 = measure_null(dut, 85.0, 0.3, 0.2);
  EXPECT_GT(std::abs(at85 - at25), 0.02);  // ≥ 20 mV ≈ 4 °/s of drift
}

TEST(Baselines, GyrostarSensitivityIsSubMillivolt) {
  AnalogGyroBaseline dut(gyrostar_like());
  dut.power_on(1);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.6, nullptr);
  const auto s = measure_sensitivity(dut, 25.0, 5, 0.2);
  EXPECT_GT(std::abs(s.mv_per_dps), 0.4);
  EXPECT_LT(std::abs(s.mv_per_dps), 1.0);  // Table 3: 0.54–0.80
}

TEST(Baselines, GyrostarNullNear1V35) {
  AnalogGyroBaseline dut(gyrostar_like());
  dut.power_on(3);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.6, nullptr);
  const double null = measure_null(dut, 25.0, 0.2, 0.3);
  EXPECT_NEAR(null, 1.35, 0.2);
}

TEST(Baselines, DevicesVaryAcrossSeeds) {
  std::vector<double> sens;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    AnalogGyroBaseline dut(adxrs300_like());
    dut.power_on(seed);
    dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.4, nullptr);
    std::vector<double> pos, neg;
    dut.run(sensor::Profile::constant(150.0), sensor::Profile::constant(25.0), 0.2, &pos);
    dut.run(sensor::Profile::constant(-150.0), sensor::Profile::constant(25.0), 0.2, &neg);
    sens.push_back((mean(std::span(pos).subspan(pos.size() / 2)) -
                    mean(std::span(neg).subspan(neg.size() / 2))) /
                   300.0);
  }
  EXPECT_GT(stddev(sens), 1e-5);  // trim spread visible
}

TEST(Baselines, RespondsWithCorrectPolarityConsistency) {
  // Positive and negative rates move the output in opposite directions.
  AnalogGyroBaseline dut(adxrs300_like());
  dut.power_on(1);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.4, nullptr);
  std::vector<double> pos, neg;
  dut.run(sensor::Profile::constant(200.0), sensor::Profile::constant(25.0), 0.2, &pos);
  dut.run(sensor::Profile::constant(-200.0), sensor::Profile::constant(25.0), 0.2, &neg);
  const double zero = dut.nominal_null();
  const double dp = mean(std::span(pos).subspan(pos.size() / 2)) - zero;
  const double dn = mean(std::span(neg).subspan(neg.size() / 2)) - zero;
  EXPECT_LT(dp * dn, 0.0);
}

}  // namespace
}  // namespace ascp::core
