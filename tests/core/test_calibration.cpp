// Calibration-flow tests on the Ideal-fidelity system (fast) — the paper's
// per-device trim procedure.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/calibration.hpp"
#include "core/gyro_system.hpp"

namespace ascp::core {
namespace {

double tail(const std::vector<double>& v) {
  return mean(std::span(v).subspan(v.size() / 2));
}

double measured_sens(GyroSystem& sys, double temp) {
  std::vector<double> pos, neg;
  sys.run(sensor::Profile::constant(100.0), sensor::Profile::constant(temp), 0.25, &pos);
  sys.run(sensor::Profile::constant(-100.0), sensor::Profile::constant(temp), 0.25, &neg);
  return (tail(pos) - tail(neg)) / 200.0;
}

TEST(Calibration, SinglePointSetsScaleAt25C) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(5);
  CalibrationConfig cal;
  cal.temps = {25.0};
  cal.warmup_s = 1.0;
  const auto comp = run_calibration(sys, cal);
  sys.set_compensation(comp);
  EXPECT_NEAR(measured_sens(sys, 25.0), 5e-3, 1.5e-4);
}

TEST(Calibration, ThreePointFlattensTemperature) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(5);
  CalibrationConfig cal;
  cal.warmup_s = 1.0;
  const auto comp = run_calibration(sys, cal);
  sys.set_compensation(comp);
  for (double t : {-40.0, 25.0, 85.0}) {
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(t), 0.6, nullptr);
    EXPECT_NEAR(std::abs(measured_sens(sys, t)), 5e-3, 2.5e-4) << t;
  }
}

TEST(Calibration, NullCenteredAfterCalibration) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(9);
  CalibrationConfig cal;
  cal.warmup_s = 1.0;
  sys.set_compensation(run_calibration(sys, cal));
  std::vector<double> o;
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.6, &o);
  EXPECT_NEAR(tail(o), 2.5, 0.02);
}

TEST(Calibration, LeavesDeviceCompensationUntouched) {
  // run_calibration restores whatever coefficients were loaded before.
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(5);
  dsp::CompensationCoeffs pre;
  pre.s0 = 1.23;
  sys.set_compensation(pre);
  CalibrationConfig cal;
  cal.temps = {25.0};
  cal.warmup_s = 0.8;
  (void)run_calibration(sys, cal);
  EXPECT_DOUBLE_EQ(sys.sense().compensation().coeffs().s0, 1.23);
}

TEST(Calibration, FactoryCalibrateIsSelfContained) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(11);
  sys.factory_calibrate();
  // After calibrate the device restarts cold: warm it, then check scale.
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_NEAR(std::abs(measured_sens(sys, 25.0)), 5e-3, 2.5e-4);
}

TEST(Calibration, CompensationSurvivesPowerCycle) {
  // The coefficients live in config (the paper's EEPROM/ROM storage): a
  // power cycle of the same die keeps the calibration valid.
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(5);
  CalibrationConfig cal;
  cal.temps = {25.0};
  cal.warmup_s = 1.0;
  sys.set_compensation(run_calibration(sys, cal));
  sys.power_on(5);  // same die, cold boot
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_NEAR(std::abs(measured_sens(sys, 25.0)), 5e-3, 2e-4);
}

}  // namespace
}  // namespace ascp::core
