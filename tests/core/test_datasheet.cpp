// Datasheet aggregation/formatting, driven by a cheap analytic sensor so the
// characterization campaign itself is validated without long simulations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/datasheet.hpp"

namespace ascp::core {
namespace {

/// Minimal deterministic sensor with seed-dependent scale/null and a small
/// temperature drift — enough structure to exercise every datasheet row.
class TinySensor : public RateSensor {
 public:
  void power_on(std::uint64_t seed) override {
    ascp::Rng rng(seed);
    sens_ = 5e-3 * (1.0 + rng.gaussian(0.02));
    null_ = 2.5 + rng.gaussian(0.01);
    t_on_ = 0.0;
  }

  double output_rate_hz() const override { return 1000.0; }

  void run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
           std::vector<double>* out) override {
    const long n = static_cast<long>(seconds * 1000.0);
    for (long i = 0; i < n; ++i) {
      const double t = i / 1000.0;
      step_one(rate.at(t), temp.at(t), out);
    }
  }

  void run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) override {
    const long n = static_cast<long>(seconds * 1000.0);
    for (long i = 0; i < n; ++i) {
      const sensor::StimulusSample s = src.sample(i);
      step_one(s.rate_dps, s.temp_c, out);
    }
  }

  double nominal_sensitivity() const override { return 5e-3; }
  double nominal_null() const override { return 2.5; }
  double full_scale_dps() const override { return 300.0; }

 private:
  void step_one(double rate, double temp, std::vector<double>* out) {
    t_on_ += 1e-3;
    const double dtc = temp - 25.0;
    const double transient = 0.2 * std::exp(-t_on_ / 0.03);
    if (out)
      out->push_back(null_ + 1e-4 * dtc + sens_ * (1.0 + 1e-4 * dtc) * rate + transient +
                     rng_.gaussian(1e-5));
  }

  double sens_ = 5e-3, null_ = 2.5, t_on_ = 0.0;
  ascp::Rng rng_{99};
};

CharacterizationConfig quick_config() {
  CharacterizationConfig cfg;
  cfg.seeds = {1, 2, 3};
  cfg.warmup_s = 0.2;
  cfg.noise_seconds = 2.0;
  cfg.measure_bandwidth_flag = false;
  return cfg;
}

TEST(Datasheet, MinTypMaxOrdered) {
  TinySensor dut;
  const auto ds = characterize(dut, "tiny", quick_config());
  ASSERT_TRUE(ds.sensitivity_initial.min && ds.sensitivity_initial.typ &&
              ds.sensitivity_initial.max);
  EXPECT_LE(*ds.sensitivity_initial.min, *ds.sensitivity_initial.typ);
  EXPECT_LE(*ds.sensitivity_initial.typ, *ds.sensitivity_initial.max);
}

TEST(Datasheet, SensitivityNearNominal) {
  TinySensor dut;
  const auto ds = characterize(dut, "tiny", quick_config());
  EXPECT_NEAR(*ds.sensitivity_initial.typ, 5.0, 0.4);
}

TEST(Datasheet, OverTemperatureSpreadsAtLeastAsWide) {
  TinySensor dut;
  const auto ds = characterize(dut, "tiny", quick_config());
  EXPECT_LE(*ds.sensitivity_over_t.min, *ds.sensitivity_initial.min + 1e-12);
  EXPECT_GE(*ds.sensitivity_over_t.max, *ds.sensitivity_initial.max - 1e-12);
}

TEST(Datasheet, TurnOnDetected) {
  TinySensor dut;
  const auto ds = characterize(dut, "tiny", quick_config());
  // transient 0.2·exp(−t/30 ms) crosses 5 mV at ≈ 110 ms.
  EXPECT_NEAR(*ds.turn_on_ms.typ, 110.0, 60.0);
}

TEST(Datasheet, SpecRowsFilled) {
  TinySensor dut;
  const auto ds = characterize(dut, "tiny", quick_config());
  EXPECT_DOUBLE_EQ(*ds.dynamic_range.max, 300.0);
  EXPECT_DOUBLE_EQ(*ds.temp_range.min, -40.0);
  EXPECT_DOUBLE_EQ(*ds.temp_range.max, 85.0);
}

TEST(Datasheet, FormatContainsAllSections) {
  TinySensor dut;
  const auto ds = characterize(dut, "TinyCorp TS-1", quick_config());
  const auto text = ds.format();
  for (const char* needle :
       {"TinyCorp TS-1", "Sensitivity", "Dynamic Range", "Non Linearity", "Null",
        "Turn On Time", "Rate Noise Dens.", "3 dB Bandwidth", "Operating Temp."}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Datasheet, EmptyCellsRenderBlank) {
  Datasheet ds;
  ds.device_name = "x";
  const auto text = ds.format();
  EXPECT_NE(text.find("Parameter"), std::string::npos);
}

TEST(Datasheet, BandwidthRowWhenEnabled) {
  TinySensor dut;
  auto cfg = quick_config();
  cfg.measure_bandwidth_flag = true;
  const auto ds = characterize(dut, "tiny", cfg);
  ASSERT_TRUE(ds.bandwidth_hz.typ);
  EXPECT_GT(*ds.bandwidth_hz.typ, 10.0);
}

}  // namespace
}  // namespace ascp::core
