// Design-flow verification (paper §2, Fig. 1): "The result of a synthesis
// step is then validated with the previous one through a verification
// phase." Our two abstraction levels — Ideal (the MATLAB system model) and
// Full (the RTL/AMS 'prototype') — must agree on the behaviours that define
// the architecture; and the analog die's TAP must configure the front end.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/gyro_system.hpp"

namespace ascp::core {
namespace {

double tail(const std::vector<double>& v) {
  return mean(std::span(v).subspan(v.size() / 2));
}

TEST(DesignFlow, IdealAndFullLockToTheSameFrequency) {
  GyroSystem ideal(default_gyro_system(Fidelity::Ideal));
  GyroSystem full(default_gyro_system(Fidelity::Full));
  ideal.power_on(1);
  full.power_on(1);
  ideal.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, nullptr);
  full.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, nullptr);
  ASSERT_TRUE(ideal.locked());
  ASSERT_TRUE(full.locked());
  EXPECT_NEAR(ideal.drive().frequency(), full.drive().frequency(), 5.0);
}

TEST(DesignFlow, IdealAndFullAgreeOnRawScaleFactor) {
  // The architecture-defining number: raw volts per °/s. The lower
  // abstraction may deviate only by the AFE's known small losses (< 10 %).
  auto raw_gain = [](Fidelity f) {
    GyroSystem sys(default_gyro_system(f));
    sys.power_on(1);
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
    std::vector<double> pos, neg;
    sys.run(sensor::Profile::constant(150.0), sensor::Profile::constant(25.0), 0.3, &pos);
    sys.run(sensor::Profile::constant(-150.0), sensor::Profile::constant(25.0), 0.3, &neg);
    return (tail(pos) - tail(neg)) / 300.0;
  };
  const double ideal = raw_gain(Fidelity::Ideal);
  const double full = raw_gain(Fidelity::Full);
  EXPECT_NEAR(full / ideal, 1.0, 0.10);
}

TEST(DesignFlow, IdealAndFullAgreeOnDriveOperatingPoint) {
  GyroSystem ideal(default_gyro_system(Fidelity::Ideal));
  GyroSystem full(default_gyro_system(Fidelity::Full));
  ideal.power_on(2);
  full.power_on(2);
  ideal.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  full.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  // The Full path needs ~15 % more drive: anti-alias droop at 15 kHz plus
  // DAC zero-order-hold losses — a known, bounded AFE cost the flow accepts.
  EXPECT_NEAR(ideal.drive().amplitude_control(), full.drive().amplitude_control(), 0.35);
  EXPECT_NEAR(ideal.drive().amplitude(), full.drive().amplitude(), 0.05);
}

TEST(DesignFlow, BothDiesAnswerOnTheJtagChain) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  auto& jtag = sys.platform().jtag();
  jtag.reset();
  EXPECT_EQ(jtag.read_idcode(0), 0x1A5CD001u);  // digital die
  EXPECT_EQ(jtag.read_idcode(1), 0x1A5CA002u);  // analog die
}

TEST(DesignFlow, AnalogTapTrimsThePga) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  auto& jtag = sys.platform().jtag();
  jtag.reset();
  jtag.write_register(1, reg::kAfePgaSense, 12 * 16);
  EXPECT_EQ(jtag.read_register(1, reg::kAfePgaSense), 12 * 16);
  sys.power_on(1);  // trim applies at the next cold start
  EXPECT_DOUBLE_EQ(sys.config().sense_pga_gain, 12.0);
}

TEST(DesignFlow, AnalogTapSelectsAdcResolution) {
  GyroSystem sys(default_gyro_system(Fidelity::Full));
  auto& jtag = sys.platform().jtag();
  jtag.reset();
  jtag.write_register(1, reg::kAfeAdcBits, 12);
  sys.power_on(1);
  EXPECT_EQ(sys.config().adc.bits, 12);
  // And the reconfigured chain still locks.
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, nullptr);
  EXPECT_TRUE(sys.locked());
}

}  // namespace
}  // namespace ascp::core
