// Closed-loop drive tests against the real MEMS model at the analog rate —
// the primary loop of the paper's Fig. 5.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "core/drive_loop.hpp"
#include "sensor/gyro_mems.hpp"

namespace ascp::core {
namespace {

struct Rig {
  // Default Q matches the platform's ring (5000): the 2.4 V drive rail
  // supports ~1 um amplitude there (x = Q*F/w0^2).
  explicit Rig(double q = 5000.0, double f0 = 15e3, std::uint64_t seed = 1)
      : mems([&] {
          sensor::GyroMemsConfig cfg;
          cfg.q_drive = q;
          cfg.q_sense = q;
          cfg.f0_hz = f0;
          cfg.brownian_accel_density = 0.0;
          cfg.quad_stiffness = 0.0;
          return cfg;
        }(), Rng(seed)),
        loop(default_drive_loop()) {}

  /// Run the loop closed over the MEMS for `seconds`.
  void run(double seconds, double temp_c = 25.0) {
    const double v_per_m = 1e6;  // charge amp × PGA × pickoff nominal
    const int div = 8;
    const double fs = mems.config().sim_fs;
    const long n = static_cast<long>(seconds * fs);
    for (long i = 0; i < n; ++i) {
      sensor::GyroInputs in;
      in.v_drive = drive_v;
      in.temp_c = temp_c;
      const auto out = mems.step(in);
      if (i % div == 0) {
        const double pickoff = v_per_m / mems.config().cap_per_meter * out.dc_primary;
        drive_v = loop.step(pickoff);
      }
    }
  }

  sensor::GyroMems mems;
  DriveLoop loop;
  double drive_v = 0.0;
};

TEST(DriveLoop, LocksAndSettlesOnRealResonator) {
  Rig rig;
  rig.run(0.8);
  EXPECT_TRUE(rig.loop.locked());
  EXPECT_NEAR(rig.loop.frequency(), 15e3, 20.0);
  EXPECT_NEAR(rig.loop.amplitude(), 1.0, 0.05);  // AGC target
}

TEST(DriveLoop, AmplitudeErrorConvergesToZero) {
  Rig rig;
  rig.run(0.8);
  EXPECT_LT(std::abs(rig.loop.amplitude_error()), 0.03);
}

TEST(DriveLoop, TracksTemperatureShiftedResonance) {
  // At −40 °C the resonance is ~20 ppm/°C × 65 °C ≈ +19.5 Hz higher.
  Rig rig;
  rig.run(0.8, -40.0);
  EXPECT_TRUE(rig.loop.locked());
  const double expected = 15e3 * (1.0 + 20e-6 * 65.0);
  EXPECT_NEAR(rig.loop.frequency(), expected, 10.0);
}

TEST(DriveLoop, DriveGainRisesForLowerQ) {
  // Lower Q needs more drive for the same amplitude: AGC gain scales ~1/Q.
  Rig high_q(10000.0), low_q(5000.0);
  high_q.run(1.5);
  low_q.run(1.5);
  ASSERT_TRUE(high_q.loop.locked());
  ASSERT_TRUE(low_q.loop.locked());
  EXPECT_NEAR(low_q.loop.amplitude_control() / high_q.loop.amplitude_control(), 2.0, 0.2);
}

TEST(DriveLoop, CarriersAreQuadrature) {
  Rig rig;
  rig.run(0.3);
  double dot = 0.0;
  // Advance a few samples and check orthogonality statistically.
  const double fs = rig.mems.config().sim_fs;
  for (int i = 0; i < 4096; ++i) {
    sensor::GyroInputs in;
    in.v_drive = rig.drive_v;
    const auto out = rig.mems.step(in);
    if (i % 8 == 0) {
      rig.drive_v = rig.loop.step(1e13 * out.dc_primary);
      dot += rig.loop.carrier_i() * rig.loop.carrier_q();
    }
  }
  (void)fs;
  EXPECT_LT(std::abs(dot / 512.0), 0.05);
}

TEST(DriveLoop, ResetRestartsCold) {
  Rig rig;
  rig.run(0.8);
  ASSERT_TRUE(rig.loop.locked());
  rig.loop.reset();
  EXPECT_FALSE(rig.loop.locked());
  EXPECT_DOUBLE_EQ(rig.loop.amplitude_control(), 0.0);
}

TEST(DriveLoop, Fig5SignalsExposeTransient) {
  // During lock acquisition the four Fig. 5 observables must actually move:
  // amplitude control ramps from 0 to its final value, phase error spikes
  // then settles, vco control converges near 0 (resonance at centre).
  Rig rig;
  double max_gain_seen = 0.0;
  const double fs = rig.mems.config().sim_fs;
  for (long i = 0; i < static_cast<long>(0.6 * fs); ++i) {
    sensor::GyroInputs in;
    in.v_drive = rig.drive_v;
    const auto out = rig.mems.step(in);
    if (i % 8 == 0) {
      rig.drive_v = rig.loop.step(1e13 * out.dc_primary);
      max_gain_seen = std::max(max_gain_seen, rig.loop.amplitude_control());
    }
  }
  EXPECT_GT(max_gain_seen, 0.2);
  EXPECT_LT(std::abs(rig.loop.phase_error()), 0.05);
  EXPECT_LT(std::abs(rig.loop.vco_control()), 30.0);
}

}  // namespace
}  // namespace ascp::core
