// test_golden_traces.cpp — bit-exact regression net over the conditioning
// pipeline.
//
// The multi-rate loop was rebuilt from a hand-rolled divider loop onto the
// platform Scheduler (and the open-loop sense path onto the batched DSP
// kernels). These goldens were captured from the pre-refactor monolithic
// loops and pin the refactor to the bit: every scenario below must produce
// the exact same doubles, sample for sample, forever. If an intentional
// numerical change is ever made, re-capture with tools/golden_capture.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/baselines.hpp"
#include "core/gyro_system.hpp"

namespace {

using namespace ascp;

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

// FNV-1a over the little-endian byte stream of the double bit patterns.
std::uint64_t fnv1a(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (double d : v) {
    const std::uint64_t u = bits(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

void expect_golden(const std::vector<double>& v, std::size_t n, std::uint64_t hash,
                   std::uint64_t first, std::uint64_t last) {
  ASSERT_EQ(v.size(), n);
  // First/last bit patterns give a readable failure before the full-stream
  // hash; the hash is what actually guarantees every sample in between.
  EXPECT_EQ(bits(v.front()), first);
  EXPECT_EQ(bits(v.back()), last);
  EXPECT_EQ(fnv1a(v), hash);
}

TEST(GoldenTraces, FullFidelityClosedLoopAcrossTwoRuns) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Full));
  sys.power_on(7);
  std::vector<double> out;
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.05, &out);
  sys.run(sensor::Profile::step(90.0, 0.01), sensor::Profile::ramp(25.0, 45.0, 0.0, 0.1), 0.1,
          &out);
  expect_golden(out, 281, 0xca208e27927aa7d5ull, 0x4003ffffffffd4a3ull, 0x4004cd464c5824afull);
}

TEST(GoldenTraces, IdealFidelityClosedLoop) {
  core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Ideal));
  sys.power_on(3);
  std::vector<double> out;
  sys.run(sensor::Profile::sine(50.0, 20.0), sensor::Profile::constant(25.0), 0.1, &out);
  expect_golden(out, 187, 0x45f0b873506aecf5ull, 0x4004000000000ca2ull, 0x4003c1974cf4d6fdull);
}

TEST(GoldenTraces, FullFidelityWithSafetyAndMcu) {
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_safety = true;
  cfg.with_mcu = true;
  core::GyroSystem sys(cfg);
  sys.power_on(11);
  std::vector<double> out;
  sys.run(sensor::Profile::constant(30.0), sensor::Profile::constant(35.0), 0.1, &out);
  expect_golden(out, 187, 0xfff6132bba18e523ull, 0x4003ffffffffdebfull, 0x40044818377e8400ull);
}

TEST(GoldenTraces, IdealOpenLoopBatchedPath) {
  // Open loop with no per-sample observers — this scenario takes the batched
  // block-DSP path and must still match the scalar-loop golden exactly.
  auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
  cfg.sense.mode = core::SenseMode::OpenLoop;
  core::GyroSystem sys(cfg);
  sys.power_on(5);
  std::vector<double> out;
  sys.run(sensor::Profile::constant(40.0), sensor::Profile::constant(25.0), 0.1, &out);
  expect_golden(out, 187, 0xf1abe3461ac0c12bull, 0x4004000000000000ull, 0x400431659a4728ceull);
}

TEST(GoldenTraces, Adxrs300BaselinePhaseCarriesAcrossRuns) {
  // 0.033335 s = 64003 analog ticks — deliberately NOT divisible by loop_div,
  // so the second run() only matches if decimation phase persists across
  // calls exactly like the pre-refactor member counters did.
  core::AnalogGyroBaseline dut(core::adxrs300_like());
  dut.power_on(21);
  std::vector<double> out;
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.033335, &out);
  dut.run(sensor::Profile::constant(100.0), sensor::Profile::constant(45.0), 0.05, &out);
  expect_golden(out, 156, 0xfef5c291a14a4f25ull, 0x40027f41d38a9184ull, 0x4006a1b5d274c5ecull);
}

TEST(GoldenTraces, GyrostarBaseline) {
  core::AnalogGyroBaseline dut(core::gyrostar_like());
  dut.power_on(33);
  std::vector<double> out;
  dut.run(sensor::Profile::step(80.0, 0.02), sensor::Profile::constant(25.0), 0.06, &out);
  expect_golden(out, 112, 0x16f1d76e39333260ull, 0x3ff52ce2f7814e46ull, 0x3ff6046922ade705ull);
}

}  // namespace
