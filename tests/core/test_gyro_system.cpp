// Full-system integration tests. Ideal fidelity is used where possible
// (≈20× faster); a few tests exercise the Full AFE path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/spectrum.hpp"
#include "core/calibration.hpp"
#include "core/gyro_system.hpp"

namespace ascp::core {
namespace {

double tail(const std::vector<double>& v) {
  return mean(std::span(v).subspan(v.size() / 2));
}

TEST(GyroSystem, LocksAfterPowerOnIdeal) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_TRUE(sys.locked());
  EXPECT_NEAR(sys.drive().frequency(), 15e3, 20.0);
}

TEST(GyroSystem, LocksAfterPowerOnFull) {
  GyroSystem sys(default_gyro_system(Fidelity::Full));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_TRUE(sys.locked());
  EXPECT_NEAR(sys.drive().amplitude(), 1.0, 0.05);
}

TEST(GyroSystem, RateOutputIsLinearInRate) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  std::vector<double> rates, outs;
  for (double r : {-200.0, -100.0, 0.0, 100.0, 200.0}) {
    std::vector<double> o;
    sys.run(sensor::Profile::constant(r), sensor::Profile::constant(25.0), 0.25, &o);
    rates.push_back(r);
    outs.push_back(tail(o));
  }
  const auto fit = fit_line(rates, outs);
  EXPECT_GT(std::abs(fit.slope), 5e-4);  // raw gain ≈ 1.2 mV/°/s
  EXPECT_LT(fit.max_abs_residual, std::abs(fit.slope) * 400.0 * 0.01);  // linear to 1 % FS
}

TEST(GyroSystem, OutputRateIs1875Hz) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  EXPECT_NEAR(sys.output_rate_hz(), 1875.0, 1e-9);
  sys.power_on(1);
  std::vector<double> o;
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.2, &o);
  EXPECT_NEAR(static_cast<double>(o.size()), 375.0, 3.0);
}

TEST(GyroSystem, CalibrationHitsTargetSensitivity) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(3);
  CalibrationConfig cal;
  cal.temps = {25.0};  // single-point for test speed
  cal.warmup_s = 1.0;
  sys.set_compensation(run_calibration(sys, cal));
  std::vector<double> pos, neg;
  sys.run(sensor::Profile::constant(150.0), sensor::Profile::constant(25.0), 0.3, &pos);
  sys.run(sensor::Profile::constant(-150.0), sensor::Profile::constant(25.0), 0.3, &neg);
  const double sens = (tail(pos) - tail(neg)) / 300.0;
  EXPECT_NEAR(sens, 5e-3, 1e-4);
  EXPECT_NEAR(tail(pos), 2.5 + 0.75, 0.02);
}

TEST(GyroSystem, DifferentSeedsAreDifferentDevices) {
  GyroSystem a(default_gyro_system(Fidelity::Full));
  GyroSystem b(default_gyro_system(Fidelity::Full));
  a.power_on(1);
  b.power_on(2);
  std::vector<double> oa, ob;
  a.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, &oa);
  b.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, &ob);
  EXPECT_GT(std::abs(tail(oa) - tail(ob)), 1e-5);  // mismatch draws differ
}

TEST(GyroSystem, SameSeedIsReproducible) {
  GyroSystem a(default_gyro_system(Fidelity::Full));
  GyroSystem b(default_gyro_system(Fidelity::Full));
  a.power_on(7);
  b.power_on(7);
  std::vector<double> oa, ob;
  a.run(sensor::Profile::constant(50.0), sensor::Profile::constant(25.0), 0.4, &oa);
  b.run(sensor::Profile::constant(50.0), sensor::Profile::constant(25.0), 0.4, &ob);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_DOUBLE_EQ(oa[i], ob[i]) << i;
}

TEST(GyroSystem, StatusRegistersReflectState) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(100.0), sensor::Profile::constant(25.0), 1.2, nullptr);
  auto& rf = sys.regs();
  EXPECT_EQ(rf.read(reg::kLock) & 1, 1);  // PLL locked
  EXPECT_NEAR(rf.read(reg::kFreq) * 4.0, 15e3, 60.0);
  EXPECT_NEAR(rf.read(reg::kRateOut) / 1000.0, sys.last_output(), 0.002);
  const auto temp_reg = static_cast<std::int16_t>(rf.read(reg::kTemp));
  EXPECT_NEAR(temp_reg / 8.0, 25.0, 2.0);
}

TEST(GyroSystem, JtagReadsTheSameStatus) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  auto& jtag = sys.platform().jtag();
  jtag.reset();
  EXPECT_EQ(jtag.read_register(0, reg::kLock), sys.regs().read(reg::kLock));
  EXPECT_EQ(jtag.read_register(0, reg::kFreq), sys.regs().read(reg::kFreq));
}

TEST(GyroSystem, ModeRegisterSwitchesLoopConfig) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.regs().write(reg::kMode, 0);  // open loop
  sys.power_on(1);                   // rebuild applies the config
  sys.run(sensor::Profile::constant(100.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  // Open loop: no control effort modulated back.
  EXPECT_EQ(sys.config().sense.mode, SenseMode::OpenLoop);
}

TEST(GyroSystem, TraceRecordsFig5Channels) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  TraceRecorder trace;
  sys.set_trace(&trace);
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.3, nullptr);
  for (const char* ch : {"amplitude_control", "phase_error", "amplitude_error", "vco_control",
                         "rate_out"}) {
    ASSERT_TRUE(trace.has(ch)) << ch;
    EXPECT_GT(trace.channel(ch).samples.size(), 100u) << ch;
  }
}

TEST(GyroSystem, SramTraceCapturesRawRate) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  auto* sram = sys.platform().sram_trace();
  ASSERT_NE(sram, nullptr);
  sram->write_reg(1, 0);  // node 0 = raw rate
  sram->write_reg(0, 3);  // reset + arm
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.2, nullptr);
  EXPECT_GT(sram->count(), 300u);
}

TEST(GyroSystem, TurnOnRingUpVisibleInAgc) {
  // Right after power-on the AGC is still ramping (the 2Q/ω0 envelope).
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.05, nullptr);
  EXPECT_FALSE(sys.locked());
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_TRUE(sys.locked());
}

TEST(GyroSystem, QuadratureIsServoedInClosedLoop) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.2, nullptr);
  // Default quad stiffness is nonzero; the servo keeps the residual small.
  EXPECT_LT(std::abs(sys.sense().baseband().i), 0.01);
}

TEST(GyroSystem, TracksTemperatureRampWithCompensation) {
  // Die warming from 25 to 85 degC mid-measurement: the calibrated output
  // at constant rate must stay within a few deg/s-equivalent.
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(3);
  CalibrationConfig cal;
  cal.warmup_s = 1.0;
  sys.set_compensation(run_calibration(sys, cal));
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.8, nullptr);
  std::vector<double> o;
  sys.run(sensor::Profile::constant(100.0), sensor::Profile::ramp(25.0, 85.0, 0.0, 2.0), 2.0,
          &o);
  // Compare the start (warm-up excluded) and the end of the ramp.
  const double early = mean(std::span(o).subspan(o.size() / 4, o.size() / 8));
  const double late = mean(std::span(o).subspan(o.size() * 7 / 8));
  EXPECT_NEAR(early, late, 5e-3 * 4.0);  // within 4 deg/s over 60 degC
}

TEST(GyroSystem, FollowsSinusoidalRateInBand) {
  // A 10 Hz, 50 deg/s sine is well inside the 75 Hz bandwidth: amplitude
  // must come through within ~10 %.
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  std::vector<double> o;
  sys.run(sensor::Profile::sine(50.0, 10.0), sensor::Profile::constant(25.0), 1.2, &o);
  const auto half = std::span(o).subspan(o.size() / 2);
  const auto tone = estimate_tone(half, sys.output_rate_hz(), 10.0);
  // Raw (uncalibrated) gain ~1.2 mV/deg/s: expect ~60 mV of 10 Hz tone.
  EXPECT_NEAR(tone.amplitude, 50.0 * 1.2e-3, 50.0 * 1.2e-3 * 0.2);
}

TEST(GyroSystem, RespondsToRateStep) {
  GyroSystem sys(default_gyro_system(Fidelity::Ideal));
  sys.power_on(1);
  sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  std::vector<double> o;
  sys.run(sensor::Profile::step(100.0, 0.05), sensor::Profile::constant(25.0), 0.3, &o);
  const double before = o[static_cast<std::size_t>(0.03 * 1875)];
  const double after = tail(o);
  EXPECT_GT(std::abs(after - before), 0.05);  // ≈ 100 °/s · 1.2 mV raw
}

}  // namespace
}  // namespace ascp::core
