// MCU-in-the-loop integration: the 8051 runs real monitoring firmware while
// the conditioning chain operates — the paper's partitioning of "processing
// in hardwired DSP, monitoring/communication in software" exercised end to
// end at test granularity.
#include <gtest/gtest.h>

#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"
#include "mcu/monitor_rom.hpp"

namespace ascp::core {
namespace {

GyroSystemConfig mcu_config() {
  auto cfg = default_gyro_system(Fidelity::Ideal);
  cfg.with_mcu = true;
  return cfg;
}

TEST(McuInTheLoop, FirmwareObservesLockTransition) {
  GyroSystem gyro(mcu_config());
  mcu::Assembler as;
  as.define("LOCKREG",
            static_cast<std::uint16_t>(gyro.platform().config().map.regfile + 2 * reg::kLock));
  // Firmware latches the first lock status it sees into 0x30, then keeps
  // updating 0x31 with the live value.
  gyro.platform().load_firmware(as.assemble(R"(
        MOV DPTR,#LOCKREG
        MOVX A,@DPTR
        MOV 30h,A
loop:   MOVX A,@DPTR
        MOV 31h,A
        SJMP loop
  )").image);
  gyro.power_on(1);
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 1.0, nullptr);
  EXPECT_EQ(gyro.platform().cpu().iram(0x30) & 3, 0);  // cold at boot
  EXPECT_EQ(gyro.platform().cpu().iram(0x31) & 3, 3);  // locked at the end
}

TEST(McuInTheLoop, MonitorRomServesHostWhileChainRuns) {
  GyroSystem gyro(mcu_config());
  gyro.platform().load_firmware(mcu::MonitorRom::image());
  gyro.power_on(1);
  gyro.run(sensor::Profile::constant(50.0), sensor::Profile::constant(25.0), 1.0, nullptr);

  // The host polls the rate register through the monitor protocol. The CPU
  // only advances while the chain runs, so interleave protocol pumping with
  // short chain slices.
  auto& mcu_sys = gyro.platform();
  const std::uint16_t rate_addr =
      static_cast<std::uint16_t>(mcu_sys.config().map.regfile + 2 * reg::kRateOut);
  mcu_sys.host().send({'R', static_cast<std::uint8_t>(rate_addr >> 8),
                       static_cast<std::uint8_t>(rate_addr & 0xFF)});
  for (int i = 0; i < 400 && mcu_sys.host().received().size() < 2; ++i)
    gyro.run(sensor::Profile::constant(50.0), sensor::Profile::constant(25.0), 0.002, nullptr);
  ASSERT_GE(mcu_sys.host().received().size(), 2u);
  EXPECT_EQ(mcu_sys.host().received()[0], 'r');
  // Uncalibrated raw gain ≈ 1.2 mV/°/s: 50 °/s ≈ 2560 mV total.
  const int mv = mcu_sys.host().received()[1];  // low byte only — sanity
  (void)mv;
  // Decode via a coherent word read instead.
  mcu_sys.host().clear_received();
  mcu::MonitorHost host(mcu_sys.cpu(), mcu_sys.host());
  // MonitorHost::transact steps the CPU directly; the chain is paused — the
  // register holds its last posted value, which is what we check.
  const auto word = host.read_word(rate_addr);
  ASSERT_TRUE(word.has_value());
  EXPECT_NEAR(*word, 2500.0 + 50.0 * 1.2, 80.0);  // mV
}

TEST(McuInTheLoop, CpuLoadDoesNotPerturbTheChain) {
  // Same die with and without the MCU slice: the rate output must be
  // identical (the CPU only observes; it does not sit in the signal path).
  auto cfg_a = mcu_config();
  GyroSystem with_mcu(cfg_a);
  mcu::Assembler as;
  with_mcu.platform().load_firmware(as.assemble("loop: SJMP loop").image);
  auto cfg_b = default_gyro_system(Fidelity::Ideal);
  cfg_b.with_mcu = false;
  GyroSystem without_mcu(cfg_b);

  with_mcu.power_on(5);
  without_mcu.power_on(5);
  std::vector<double> oa, ob;
  with_mcu.run(sensor::Profile::constant(75.0), sensor::Profile::constant(25.0), 0.5, &oa);
  without_mcu.run(sensor::Profile::constant(75.0), sensor::Profile::constant(25.0), 0.5, &ob);
  ASSERT_EQ(oa.size(), ob.size());
  for (std::size_t i = 0; i < oa.size(); ++i) EXPECT_DOUBLE_EQ(oa[i], ob[i]) << i;
}

}  // namespace
}  // namespace ascp::core
