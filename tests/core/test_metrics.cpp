// Metrology verified against an analytic fake sensor whose datasheet is
// known exactly — so sensitivity fits, turn-on detection, PSD-based noise
// and bandwidth interpolation are each checked for correctness, fast.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"

namespace ascp::core {
namespace {

/// First-order analytic rate sensor: out = null + sens·rate_filtered with a
/// one-pole bandwidth, exponential warm-up transient, white output noise
/// and optional cubic nonlinearity.
class FakeSensor : public RateSensor {
 public:
  struct Config {
    double sens = 5e-3;
    double null = 2.5;
    double bw_hz = 50.0;
    double fs_out = 2000.0;
    double warmup_tau = 0.05;
    double warmup_amp = 0.5;
    double noise_density = 0.0;  // V/√Hz
    double cubic = 0.0;          // fraction of FS³ term
    double fs_dps = 300.0;
  };

  explicit FakeSensor(const Config& cfg) : cfg_(cfg) { power_on(1); }

  void power_on(std::uint64_t seed) override {
    rng_ = ascp::Rng(seed);
    state_ = 0.0;
    t_since_on_ = 0.0;
    alpha_ = 1.0 - std::exp(-kTwoPi * cfg_.bw_hz / cfg_.fs_out);
    noise_sigma_ = cfg_.noise_density * std::sqrt(cfg_.fs_out / 2.0);
  }

  double output_rate_hz() const override { return cfg_.fs_out; }

  void run(const sensor::Profile& rate, const sensor::Profile& temp, double seconds,
           std::vector<double>* out) override {
    (void)temp;
    const long n = static_cast<long>(seconds * cfg_.fs_out + 0.5);
    for (long i = 0; i < n; ++i) step_one(rate.at(static_cast<double>(i) / cfg_.fs_out), out);
  }

  void run(sensor::StimulusSource& src, double seconds, std::vector<double>* out) override {
    const long n = static_cast<long>(seconds * cfg_.fs_out + 0.5);
    for (long i = 0; i < n; ++i) step_one(src.sample(i).rate_dps, out);
  }

  double nominal_sensitivity() const override { return cfg_.sens; }
  double nominal_null() const override { return cfg_.null; }
  double full_scale_dps() const override { return cfg_.fs_dps; }

 private:
  void step_one(double r, std::vector<double>* out) {
    const double x = r / cfg_.fs_dps;
    const double nonlin = cfg_.cubic * x * x * x * cfg_.fs_dps;
    state_ += alpha_ * (cfg_.sens * (r + nonlin) - state_);
    t_since_on_ += 1.0 / cfg_.fs_out;
    const double transient = cfg_.warmup_amp * std::exp(-t_since_on_ / cfg_.warmup_tau);
    if (out) out->push_back(cfg_.null + state_ + transient + rng_.gaussian(noise_sigma_));
  }

  Config cfg_;
  ascp::Rng rng_{1};
  double state_ = 0.0, t_since_on_ = 0.0, alpha_ = 0.0, noise_sigma_ = 0.0;
};

TEST(Metrics, SensitivityRecoversExactSlope) {
  FakeSensor dut({});
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.5, nullptr);
  const auto r = measure_sensitivity(dut, 25.0);
  EXPECT_NEAR(r.mv_per_dps, 5.0, 0.01);
  EXPECT_NEAR(r.null_v, 2.5, 1e-3);
  EXPECT_LT(r.nonlinearity_pct_fs, 0.02);
}

TEST(Metrics, SensitivityDetectsCubicNonlinearity) {
  FakeSensor::Config cfg;
  cfg.cubic = 0.02;  // 2 % of FS cubic droop
  FakeSensor dut(cfg);
  dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.5, nullptr);
  const auto r = measure_sensitivity(dut, 25.0, /*points=*/11);
  EXPECT_GT(r.nonlinearity_pct_fs, 0.3);
  EXPECT_LT(r.nonlinearity_pct_fs, 2.0);
}

TEST(Metrics, NullMeasurement) {
  FakeSensor::Config cfg;
  cfg.null = 2.61;
  FakeSensor dut(cfg);
  EXPECT_NEAR(measure_null(dut, 25.0), 2.61, 1e-3);
}

TEST(Metrics, TurnOnTimeMatchesTransientDecay) {
  // transient = 0.5·exp(−t/50 ms) falls below 5 mV at t = 50 ms·ln(100) ≈ 230 ms.
  FakeSensor dut({});
  const double t_on = measure_turn_on(dut, 1, 25.0, 5e-3, 2.0);
  EXPECT_NEAR(t_on, 0.05 * std::log(0.5 / 5e-3), 0.06);
}

TEST(Metrics, TurnOnFastForCleanDevice) {
  // Only the 50 Hz response pole delays validity: settle in ≲2 windows.
  FakeSensor::Config cfg;
  cfg.warmup_amp = 0.0;
  FakeSensor dut(cfg);
  EXPECT_LE(measure_turn_on(dut, 1, 25.0, 5e-3, 1.0), 0.08);
}

TEST(Metrics, NoiseDensityMatchesInjectedNoise) {
  FakeSensor::Config cfg;
  cfg.noise_density = 5e-4;  // V/√Hz → 0.1 °/s/√Hz at 5 mV/°/s
  cfg.warmup_amp = 0.0;
  FakeSensor dut(cfg);
  const double nd = measure_noise_density(dut, 25.0, 8.0);
  EXPECT_NEAR(nd, 0.1, 0.015);
}

TEST(Metrics, NoiseZeroForNoiselessDevice) {
  FakeSensor::Config cfg;
  cfg.noise_density = 0.0;
  cfg.warmup_amp = 0.0;
  FakeSensor dut(cfg);
  EXPECT_LT(measure_noise_density(dut, 25.0, 4.0), 1e-6);
}

TEST(Metrics, BandwidthFindsOnePoleCorner) {
  FakeSensor::Config cfg;
  cfg.bw_hz = 50.0;
  cfg.warmup_amp = 0.0;
  FakeSensor dut(cfg);
  const double bw = measure_bandwidth(dut, 25.0);
  EXPECT_NEAR(bw, 50.0, 7.0);
}

TEST(Metrics, BandwidthScalesWithDevice) {
  FakeSensor::Config cfg;
  cfg.warmup_amp = 0.0;
  cfg.bw_hz = 25.0;
  FakeSensor narrow(cfg);
  cfg.bw_hz = 100.0;
  FakeSensor wide(cfg);
  EXPECT_LT(measure_bandwidth(narrow, 25.0), measure_bandwidth(wide, 25.0) * 0.5);
}

// Sweep: the sensitivity fit tracks the device's true scale factor.
class MetricsSens : public ::testing::TestWithParam<double> {};

TEST_P(MetricsSens, FitsTrueScale) {
  FakeSensor::Config cfg;
  cfg.sens = GetParam();
  cfg.warmup_amp = 0.0;
  FakeSensor dut(cfg);
  const auto r = measure_sensitivity(dut, 25.0);
  EXPECT_NEAR(r.mv_per_dps, GetParam() * 1e3, GetParam() * 1e3 * 0.005);
}

INSTANTIATE_TEST_SUITE_P(Scales, MetricsSens, ::testing::Values(0.67e-3, 2e-3, 5e-3, 10e-3));

}  // namespace
}  // namespace ascp::core
