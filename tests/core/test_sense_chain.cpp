// Sense-chain tests with synthetic carriers: demodulation mapping,
// decimation, compensation hookup and the closed-loop servo behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "common/math.hpp"
#include "core/sense_chain.hpp"
#include "dsp/nco.hpp"

namespace ascp::core {
namespace {

constexpr double kFs = 240e3;

SenseChainConfig open_loop_config() {
  SenseChainConfig cfg;
  cfg.fs = kFs;
  cfg.mode = SenseMode::OpenLoop;
  return cfg;
}

/// Drive the chain with pickoff = a·sin + b·cos and collect slow outputs.
std::vector<double> run_chain(SenseChain& chain, double a, double b, double seconds,
                              double temp_c = 25.0) {
  dsp::Nco nco(kFs, 15e3);
  std::vector<double> out;
  const long n = static_cast<long>(seconds * kFs);
  for (long i = 0; i < n; ++i) {
    nco.step();
    chain.step(a * nco.sine() + b * nco.cosine(), nco.sine(), nco.cosine());
    if (const auto slow = chain.slow_output(temp_c)) out.push_back(slow->rate);
  }
  return out;
}

TEST(SenseChain, OutputRateIsFsOverCicRatio) {
  SenseChain chain(open_loop_config());
  EXPECT_DOUBLE_EQ(chain.output_rate_hz(), kFs / 128.0);
  const auto out = run_chain(chain, 0.0, 0.0, 0.1);
  EXPECT_NEAR(static_cast<double>(out.size()), 0.1 * kFs / 128.0, 2.0);
}

TEST(SenseChain, CosineComponentIsTheRateChannel) {
  SenseChain chain(open_loop_config());
  const auto out = run_chain(chain, 0.0, 0.4, 0.3);
  // Open loop: output = raw (cos amplitude) + 2.5 V offset.
  EXPECT_NEAR(out.back(), 2.5 + 0.4, 0.02);
}

TEST(SenseChain, SineComponentIsQuadratureOnly) {
  SenseChain chain(open_loop_config());
  run_chain(chain, 0.5, 0.0, 0.3);
  EXPECT_NEAR(chain.raw_rate(), 0.0, 0.01);
  EXPECT_NEAR(chain.raw_quad(), 0.5, 0.02);
}

TEST(SenseChain, DemodPhaseTrimRotatesChannels) {
  SenseChainConfig cfg = open_loop_config();
  cfg.demod_phase_trim = 0.3;
  SenseChain chain(cfg);
  // Signal at exactly the trim angle lands entirely in the rate channel.
  run_chain(chain, -std::sin(0.3) * 0.4, std::cos(0.3) * 0.4, 0.3);
  EXPECT_NEAR(chain.raw_rate(), 0.4, 0.02);
  EXPECT_NEAR(chain.raw_quad(), 0.0, 0.02);
}

TEST(SenseChain, CompensationAppliesOffsetAndScale) {
  SenseChain chain(open_loop_config());
  dsp::CompensationCoeffs c;
  c.offset = {0.1, 0.0, 0.0};
  c.s0 = 2.0;
  chain.set_compensation(c);
  const auto out = run_chain(chain, 0.0, 0.4, 0.3);
  EXPECT_NEAR(out.back(), 2.5 + (0.4 - 0.1) * 2.0, 0.02);
}

TEST(SenseChain, CompensationUsesMeasuredTemperature) {
  SenseChain chain(open_loop_config());
  dsp::CompensationCoeffs c;
  c.offset = {0.0, 1e-3, 0.0};  // 1 mV/°C offset model
  chain.set_compensation(c);
  const auto cold = run_chain(chain, 0.0, 0.4, 0.3, -40.0);
  SenseChain chain2(open_loop_config());
  chain2.set_compensation(c);
  const auto hot = run_chain(chain2, 0.0, 0.4, 0.3, 85.0);
  EXPECT_NEAR(cold.back() - hot.back(), 1e-3 * 125.0, 1e-3);
}

TEST(SenseChain, ClosedLoopNullsTheBaseband) {
  // Closed loop around a behavioural plant: control force in sin phase
  // shows up (negated, scaled) in the cos channel after the resonator.
  SenseChainConfig cfg;
  cfg.fs = kFs;
  cfg.mode = SenseMode::ClosedLoop;
  cfg.rate_kp = 30.0;
  cfg.rate_ki = 4000.0;
  SenseChain chain(cfg);
  dsp::Nco nco(kFs, 15e3);

  // Plant: disturbance amplitude d in cos channel; control subtracts
  // k·u_rate (envelope pole at ~1.5 Hz modelled by a slow one-pole).
  const double k_plant = 2.24;
  const double d = 0.5;
  double env = 0.0;  // envelope of the net cos-channel amplitude
  const double alpha = 1.0 - std::exp(-kTwoPi * 1.5 / kFs);
  double u = 0.0, u_f = 0.0;
  std::vector<double> out;
  for (long i = 0; i < static_cast<long>(1.5 * kFs); ++i) {
    nco.step();
    env += alpha * ((d - k_plant * u) - env);
    const auto fast = chain.step(env * nco.cosine(), nco.sine(), nco.cosine());
    // Extract u_rate from the modulated control (project onto sin, smooth).
    u_f += 0.001 * (fast.control_v * nco.sine() * 2.0 - u_f);
    u = u_f;
    if (const auto slow = chain.slow_output(25.0)) out.push_back(slow->rate);
  }
  // Servo nulls the baseband: residual cos amplitude ≈ 0, and the feedback
  // effort (the output) carries the disturbance estimate d/k.
  EXPECT_NEAR(chain.baseband().q, 0.0, 0.01);
  EXPECT_NEAR(out.back() - 2.5, d / k_plant, 0.05);
}

TEST(SenseChain, ControlClampsAtRail) {
  SenseChainConfig cfg;
  cfg.fs = kFs;
  cfg.mode = SenseMode::ClosedLoop;
  cfg.ctrl_limit = 1.0;
  SenseChain chain(cfg);
  dsp::Nco nco(kFs, 15e3);
  double max_ctrl = 0.0;
  for (long i = 0; i < 100000; ++i) {
    nco.step();
    // Huge persistent disturbance the limited control cannot null.
    const auto fast = chain.step(2.0 * nco.cosine(), nco.sine(), nco.cosine());
    max_ctrl = std::max(max_ctrl, std::abs(fast.control_v));
    chain.slow_output(25.0);
  }
  EXPECT_LE(max_ctrl, 1.0 + 1e-9);
}

TEST(SenseChain, OpenLoopProducesNoControl) {
  SenseChain chain(open_loop_config());
  dsp::Nco nco(kFs, 15e3);
  for (int i = 0; i < 10000; ++i) {
    nco.step();
    const auto fast = chain.step(0.5 * nco.cosine(), nco.sine(), nco.cosine());
    EXPECT_DOUBLE_EQ(fast.control_v, 0.0);
  }
}

TEST(SenseChain, ResetClearsEverything) {
  SenseChain chain(open_loop_config());
  run_chain(chain, 0.3, 0.7, 0.2);
  chain.reset();
  EXPECT_DOUBLE_EQ(chain.raw_rate(), 0.0);
  EXPECT_DOUBLE_EQ(chain.baseband().i, 0.0);
  const auto out = run_chain(chain, 0.0, 0.0, 0.1);
  EXPECT_NEAR(out.back(), 2.5, 1e-6);
}

TEST(SenseChain, DatapathQuantizationDegradesGracefully) {
  // 20-bit registers are transparent vs float; 8-bit registers are not —
  // the wordlength-exploration property the design flow relies on.
  auto run_bits = [](int bits) {
    SenseChainConfig cfg = open_loop_config();
    cfg.datapath_bits = bits;
    SenseChain chain(cfg);
    // 0.3765 sits mid-step on the 8-bit grid (LSB ≈ 19.5 mV).
    const auto out = run_chain(chain, 0.0, 0.3765, 0.3);
    return out.back();
  };
  const double ref = run_bits(0);
  EXPECT_NEAR(run_bits(20), ref, 1e-4);
  EXPECT_GT(std::abs(run_bits(8) - ref), 1e-3);
}

TEST(SenseChain, OutputBandwidthSetByFir) {
  // A 200 Hz AM on the cos channel is attenuated by the 75 Hz output FIR.
  SenseChain chain(open_loop_config());
  dsp::Nco nco(kFs, 15e3);
  std::vector<double> out;
  for (long i = 0; i < static_cast<long>(1.0 * kFs); ++i) {
    nco.step();
    const double am = 0.4 * std::sin(kTwoPi * 200.0 * i / kFs);
    chain.step(am * nco.cosine(), nco.sine(), nco.cosine());
    if (const auto slow = chain.slow_output(25.0)) out.push_back(slow->rate);
  }
  double peak = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i)
    peak = std::max(peak, std::abs(out[i] - 2.5));
  EXPECT_LT(peak, 0.4 * 0.35);  // well into the FIR stopband skirt
}

TEST(SenseChain, BlockPathMatchesScalarPathBitExact) {
  // The engine batches the open-loop hot path through step_block, sizing
  // blocks with samples_until_slow() so every CIC completion lands on a
  // block boundary. Slow outputs must match the scalar path to the bit.
  SenseChain scalar(open_loop_config());
  SenseChain blocked(open_loop_config());
  dsp::Nco nco(kFs, 15e3);

  std::vector<double> want, got;
  std::vector<double> pk, ci, cq;
  const long n = static_cast<long>(0.05 * kFs);
  for (long i = 0; i < n; ++i) {
    nco.step();
    const double x = 0.3 * nco.cosine() + 0.1 * nco.sine();
    scalar.step(x, nco.sine(), nco.cosine());
    if (const auto slow = scalar.slow_output(25.0)) want.push_back(slow->rate);

    if (pk.empty()) {
      ASSERT_EQ(blocked.samples_until_slow(), 128);
    }
    pk.push_back(x);
    ci.push_back(nco.sine());
    cq.push_back(nco.cosine());
    if (static_cast<long>(pk.size()) == blocked.samples_until_slow()) {
      blocked.step_block(pk, ci, cq);
      pk.clear();
      ci.clear();
      cq.clear();
      if (const auto slow = blocked.slow_output(25.0)) got.push_back(slow->rate);
    }
  }
  blocked.step_block(pk, ci, cq);  // flush the trailing partial block
  if (const auto slow = blocked.slow_output(25.0)) got.push_back(slow->rate);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_FALSE(want.empty());
  for (std::size_t k = 0; k < want.size(); ++k) ASSERT_EQ(want[k], got[k]) << "sample " << k;
  EXPECT_EQ(scalar.baseband().i, blocked.baseband().i);
  EXPECT_EQ(scalar.baseband().q, blocked.baseband().q);
}

}  // namespace
}  // namespace ascp::core
