#include <gtest/gtest.h>

#include <cmath>

#include "dsp/agc.hpp"

namespace ascp::dsp {
namespace {

AgcConfig test_config() {
  AgcConfig cfg;
  cfg.fs = 240e3;
  cfg.target = 1.0;
  return cfg;
}

/// First-order plant: measured amplitude follows gain with time constant tau
/// and plant gain k — a crude stand-in for the resonator envelope dynamics.
class EnvelopePlant {
 public:
  EnvelopePlant(double k, double tau, double fs) : k_(k), alpha_(1.0 / (tau * fs)) {}
  double step(double gain) {
    amp_ += alpha_ * (k_ * gain - amp_);
    return amp_;
  }
  double amplitude() const { return amp_; }

 private:
  double k_;
  double alpha_;
  double amp_ = 0.0;
};

TEST(Agc, ConvergesToTarget) {
  Agc agc(test_config());
  EnvelopePlant plant(0.5, 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 100000; ++i) amp = plant.step(agc.step(amp));
  EXPECT_NEAR(amp, 1.0, 0.02);
  EXPECT_TRUE(agc.settled());
}

TEST(Agc, SteadyStateGainInvertsPlant) {
  Agc agc(test_config());
  EnvelopePlant plant(0.25, 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 200000; ++i) amp = plant.step(agc.step(amp));
  // amplitude = k·gain at steady state ⇒ gain = target/k = 4.
  EXPECT_NEAR(agc.gain(), 4.0, 0.1);
}

TEST(Agc, ErrorSignalGoesToZero) {
  Agc agc(test_config());
  EnvelopePlant plant(0.5, 0.005, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 150000; ++i) amp = plant.step(agc.step(amp));
  EXPECT_NEAR(agc.error(), 0.0, 0.02);
}

TEST(Agc, GainClampsAtUpperRail) {
  AgcConfig cfg = test_config();
  cfg.gain_max = 2.0;
  Agc agc(cfg);
  // Weak plant: target unreachable, gain must pin at the rail, not wind up.
  EnvelopePlant plant(0.1, 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 200000; ++i) amp = plant.step(agc.step(amp));
  EXPECT_NEAR(agc.gain(), 2.0, 1e-6);
  EXPECT_FALSE(agc.settled());
}

TEST(Agc, RecoversFromDisturbance) {
  // Anti-windup: after a long unreachable stretch, recovery is prompt.
  Agc agc(test_config());
  EnvelopePlant weak(0.05, 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 100000; ++i) amp = weak.step(agc.step(amp));
  EnvelopePlant strong(0.5, 0.01, 240e3);
  int settle_steps = 0;
  for (int i = 0; i < 200000; ++i) {
    amp = strong.step(agc.step(amp));
    if (agc.settled()) {
      settle_steps = i;
      break;
    }
  }
  EXPECT_GT(settle_steps, 0);
  EXPECT_LT(settle_steps, 150000);  // < 0.6 s at 240 kHz
}

TEST(Agc, ResetRestoresInitialState) {
  Agc agc(test_config());
  EnvelopePlant plant(0.5, 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 50000; ++i) amp = plant.step(agc.step(amp));
  agc.reset();
  EXPECT_DOUBLE_EQ(agc.gain(), 0.0);
  EXPECT_FALSE(agc.settled());
}

TEST(Agc, SettledFlagRequiresPersistence) {
  Agc agc(test_config());
  // One in-tolerance sample must not set the flag.
  agc.step(1.0);
  EXPECT_FALSE(agc.settled());
}

// Sweep: loop converges for a range of plant gains (AGC robustness across
// drive-mode transduction spread).
class AgcPlantGain : public ::testing::TestWithParam<double> {};

TEST_P(AgcPlantGain, Converges) {
  Agc agc(test_config());
  EnvelopePlant plant(GetParam(), 0.01, 240e3);
  double amp = 0.0;
  for (int i = 0; i < 400000; ++i) amp = plant.step(agc.step(amp));
  EXPECT_NEAR(amp, 1.0, 0.03) << "k=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PlantGains, AgcPlantGain, ::testing::Values(0.2, 0.5, 1.0, 3.0));

}  // namespace
}  // namespace ascp::dsp
