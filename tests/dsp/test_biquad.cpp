#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "dsp/biquad.hpp"

namespace ascp::dsp {
namespace {

TEST(BiquadDesign, LowpassDcUnityNyquistZero) {
  const auto c = design_biquad_lowpass(100.0, 0.707, 1000.0);
  EXPECT_NEAR(biquad_magnitude(c, 0.0, 1000.0), 1.0, 1e-9);
  EXPECT_LT(biquad_magnitude(c, 499.0, 1000.0), 0.05);
}

TEST(BiquadDesign, LowpassMinus3DbAtCutoffButterworthQ) {
  const auto c = design_biquad_lowpass(100.0, 0.7071, 1000.0);
  EXPECT_NEAR(biquad_magnitude(c, 100.0, 1000.0), from_db20(-3.0), 0.01);
}

TEST(BiquadDesign, HighpassRejectsDc) {
  const auto c = design_biquad_highpass(100.0, 0.707, 1000.0);
  EXPECT_NEAR(biquad_magnitude(c, 0.0, 1000.0), 0.0, 1e-9);
  EXPECT_NEAR(biquad_magnitude(c, 450.0, 1000.0), 1.0, 0.05);
}

TEST(BiquadDesign, BandpassPeakAtCentre) {
  const auto c = design_biquad_bandpass(150.0, 5.0, 1000.0);
  EXPECT_NEAR(biquad_magnitude(c, 150.0, 1000.0), 1.0, 0.01);
  EXPECT_LT(biquad_magnitude(c, 50.0, 1000.0), 0.2);
  EXPECT_LT(biquad_magnitude(c, 350.0, 1000.0), 0.35);
}

TEST(BiquadDesign, NotchNullsCentrePassesElsewhere) {
  const auto c = design_biquad_notch(60.0, 10.0, 1000.0);
  EXPECT_LT(biquad_magnitude(c, 60.0, 1000.0), 1e-6);
  EXPECT_NEAR(biquad_magnitude(c, 5.0, 1000.0), 1.0, 0.02);
  EXPECT_NEAR(biquad_magnitude(c, 300.0, 1000.0), 1.0, 0.02);
}

TEST(Biquad, TimeDomainMatchesMagnitudeResponse) {
  // Drive with a sine, compare steady-state amplitude against the analytic
  // magnitude — ties the sample-domain implementation to the z-transform.
  const double fs = 10000.0, f0 = 400.0;
  const auto c = design_biquad_lowpass(800.0, 1.0, fs);
  Biquad bq(c);
  double peak = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double y = bq.process(std::sin(kTwoPi * f0 * i / fs));
    if (i > n / 2) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, biquad_magnitude(c, f0, fs), 0.01);
}

TEST(Biquad, ImpulseDecaysForStableFilter) {
  Biquad bq(design_biquad_lowpass(100.0, 2.0, 1000.0));
  double y = bq.process(1.0);
  double late = 0.0;
  for (int i = 0; i < 2000; ++i) {
    y = bq.process(0.0);
    if (i > 1900) late = std::max(late, std::abs(y));
  }
  EXPECT_LT(late, 1e-9);
}

TEST(Biquad, ResetClearsState) {
  Biquad bq(design_biquad_lowpass(100.0, 0.707, 1000.0));
  bq.process(5.0);
  bq.reset();
  EXPECT_NEAR(bq.process(0.0), 0.0, 1e-15);
}

TEST(BiquadCascade, EmptyCascadeIsIdentity) {
  BiquadCascade c;
  EXPECT_DOUBLE_EQ(c.process(0.7), 0.7);
}

TEST(BiquadCascade, TwoSectionsMultiplyResponses) {
  const auto c1 = design_biquad_lowpass(100.0, 0.54, 1000.0);
  const auto c2 = design_biquad_lowpass(100.0, 1.31, 1000.0);
  BiquadCascade cas({c1, c2});
  // Measure at 150 Hz via steady-state sine.
  const double fs = 1000.0, f0 = 150.0;
  double peak = 0.0;
  for (int i = 0; i < 8000; ++i) {
    const double y = cas.process(std::sin(kTwoPi * f0 * i / fs));
    if (i > 6000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, biquad_magnitude(c1, f0, fs) * biquad_magnitude(c2, f0, fs), 0.02);
}

TEST(Butterworth, FourthOrderMinus3DbAtCutoff) {
  auto cas = design_butterworth_lowpass(4, 100.0, 1000.0);
  EXPECT_EQ(cas.size(), 2u);
  const double fs = 1000.0;
  double peak = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double y = cas.process(std::sin(kTwoPi * 100.0 * i / fs));
    if (i > 8000) peak = std::max(peak, std::abs(y));
  }
  // RBJ sections carry bilinear frequency warping at fc = fs/10, so the
  // measured point sits slightly below the analog −3 dB value.
  EXPECT_NEAR(peak, from_db20(-3.0), 0.05);
}

TEST(Butterworth, RolloffSteepensWithOrder) {
  const double fs = 1000.0, f_test = 300.0;
  double gains[2];
  int idx = 0;
  for (int order : {2, 6}) {
    auto cas = design_butterworth_lowpass(order, 100.0, fs);
    double peak = 0.0;
    for (int i = 0; i < 10000; ++i) {
      const double y = cas.process(std::sin(kTwoPi * f_test * i / fs));
      if (i > 8000) peak = std::max(peak, std::abs(y));
    }
    gains[idx++] = peak;
  }
  EXPECT_LT(gains[1], gains[0] / 50.0);  // 6th order ≫ steeper than 2nd
}

// Grid sweep: every cookbook design's measured magnitude matches the
// analytic response at probe frequencies across (fc, q).
class BiquadDesignGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BiquadDesignGrid, TimeDomainMatchesAnalyticResponse) {
  const auto [fc, q] = GetParam();
  const double fs = 48000.0;
  for (const auto& c : {design_biquad_lowpass(fc, q, fs), design_biquad_highpass(fc, q, fs),
                        design_biquad_bandpass(fc, q, fs), design_biquad_notch(fc, q, fs)}) {
    Biquad bq(c);
    const double f_probe = fc * 1.7;
    double peak = 0.0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
      const double y = bq.process(std::sin(kTwoPi * f_probe * i / fs));
      if (i > n * 3 / 4) peak = std::max(peak, std::abs(y));
    }
    EXPECT_NEAR(peak, biquad_magnitude(c, f_probe, fs), 0.03 + 0.03 * peak)
        << "fc=" << fc << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BiquadDesignGrid,
                         ::testing::Combine(::testing::Values(100.0, 1000.0, 6000.0),
                                            ::testing::Values(0.5, 0.707, 3.0)));

// Sweep: every design stays stable (|poles| < 1 ⇒ impulse decays).
class BiquadStability : public ::testing::TestWithParam<double> {};

TEST_P(BiquadStability, ImpulseResponseDecays) {
  const double q = GetParam();
  Biquad bq(design_biquad_lowpass(200.0, q, 1000.0));
  bq.process(1.0);
  double energy_tail = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double y = bq.process(0.0);
    if (i > 49000) energy_tail += y * y;
  }
  EXPECT_LT(energy_tail, 1e-12) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Qs, BiquadStability, ::testing::Values(0.3, 0.707, 2.0, 10.0, 50.0));

}  // namespace
}  // namespace ascp::dsp
