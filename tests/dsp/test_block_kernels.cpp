// Block-kernel bit-exactness: every *_block variant must reproduce the
// per-sample path to the bit, for any block partitioning. The engine's
// batched hot path leans on this equivalence — a single ULP of drift here
// breaks the farm's cross-thread determinism guarantee downstream.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/modem.hpp"
#include "dsp/nco.hpp"

namespace ascp::dsp {
namespace {

constexpr double kFs = 240e3;

std::vector<double> noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian(0.7) + 0.1;
  return v;
}

// Feed the same stream through the scalar path and through blocks of the
// given (deliberately awkward) sizes; results must be bit-identical.
const std::size_t kChunks[] = {1, 7, 64, 13, 128, 3, 300};

TEST(BlockKernels, BiquadBlockMatchesScalarBitExact) {
  const auto in = noise(516, 42);
  Biquad scalar(design_biquad_lowpass(400.0, 0.707, kFs));
  Biquad blocked(scalar.coeffs());

  std::vector<double> want(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

  std::vector<double> got = in;
  std::size_t pos = 0, ci = 0;
  while (pos < got.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], got.size() - pos);
    blocked.process_block(std::span<double>(got).subspan(pos, n));
    pos += n;
  }
  for (std::size_t k = 0; k < in.size(); ++k) ASSERT_EQ(want[k], got[k]) << "sample " << k;
}

TEST(BlockKernels, BiquadCascadeBlockMatchesScalarBitExact) {
  const auto in = noise(516, 43);
  BiquadCascade scalar = design_butterworth_lowpass(4, 100.0, kFs / 128.0);
  BiquadCascade blocked = design_butterworth_lowpass(4, 100.0, kFs / 128.0);

  std::vector<double> want(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

  std::vector<double> got = in;
  std::size_t pos = 0, ci = 0;
  while (pos < got.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], got.size() - pos);
    blocked.process_block(std::span<double>(got).subspan(pos, n));
    pos += n;
  }
  for (std::size_t k = 0; k < in.size(); ++k) ASSERT_EQ(want[k], got[k]) << "sample " << k;
}

TEST(BlockKernels, FirBlockMatchesScalarBitExact) {
  const auto in = noise(516, 44);
  const auto taps = design_lowpass(63, 100.0, kFs / 128.0);
  FirFilter scalar(taps), blocked(taps);

  std::vector<double> want(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

  std::vector<double> got(in.size());
  std::size_t pos = 0, ci = 0;
  while (pos < in.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], in.size() - pos);
    blocked.process_block(std::span<const double>(in).subspan(pos, n),
                          std::span<double>(got).subspan(pos, n));
    pos += n;
  }
  for (std::size_t k = 0; k < in.size(); ++k) ASSERT_EQ(want[k], got[k]) << "sample " << k;
}

TEST(BlockKernels, FirBlockAllowsElementwiseAliasing) {
  const auto in = noise(300, 45);
  const auto taps = design_lowpass(31, 200.0, kFs / 128.0);
  FirFilter scalar(taps), blocked(taps);

  std::vector<double> want(in.size());
  for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

  std::vector<double> inout = in;
  blocked.process_block(inout, inout);  // in-place
  for (std::size_t k = 0; k < in.size(); ++k) ASSERT_EQ(want[k], inout[k]) << "sample " << k;
}

TEST(BlockKernels, CicBlockMatchesScalarBitExact) {
  // Block boundaries straddle decimation boundaries (ratio 128, chunks up to
  // 300) so partial frames carry across push_block calls.
  const auto in = noise(4 * 128 + 37, 46);
  CicDecimator scalar(3, 128, 16, 2.5), blocked(3, 128, 16, 2.5);

  std::vector<double> want;
  for (double x : in)
    if (const auto y = scalar.push(x)) want.push_back(*y);

  std::vector<double> got(in.size() / 128 + 1);
  std::size_t n_out = 0, pos = 0, ci = 0;
  while (pos < in.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], in.size() - pos);
    n_out += blocked.push_block(std::span<const double>(in).subspan(pos, n),
                                std::span<double>(got).subspan(n_out));
    pos += n;
  }
  ASSERT_EQ(n_out, want.size());
  for (std::size_t k = 0; k < want.size(); ++k) ASSERT_EQ(want[k], got[k]) << "sample " << k;
}

TEST(BlockKernels, CicTicksUntilOutputTracksPhase) {
  CicDecimator cic(3, 8);
  EXPECT_EQ(cic.ticks_until_output(), 8);
  std::vector<double> out(2);
  std::size_t n = 0;
  for (int i = 0; i < 5; ++i) {
    cic.push(1.0);
    EXPECT_EQ(cic.ticks_until_output(), 8 - (i + 1));
  }
  const double tail[] = {1.0, 1.0, 1.0};
  n = cic.push_block(tail, out);
  EXPECT_EQ(n, 1u);  // block completes the frame exactly
  EXPECT_EQ(cic.ticks_until_output(), 8);
}

TEST(BlockKernels, NcoBlockMatchesScalarBitExact) {
  Nco scalar(kFs, 14.5e3), blocked(kFs, 14.5e3);

  std::vector<double> want_s(516), want_c(516);
  for (std::size_t k = 0; k < want_s.size(); ++k) {
    want_s[k] = scalar.step();
    want_c[k] = scalar.cosine();
  }

  std::vector<double> got_s(want_s.size()), got_c(want_s.size());
  std::size_t pos = 0, ci = 0;
  while (pos < got_s.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], got_s.size() - pos);
    blocked.step_block(std::span<double>(got_s).subspan(pos, n),
                       std::span<double>(got_c).subspan(pos, n));
    pos += n;
  }
  for (std::size_t k = 0; k < want_s.size(); ++k) {
    ASSERT_EQ(want_s[k], got_s[k]) << "sin sample " << k;
    ASSERT_EQ(want_c[k], got_c[k]) << "cos sample " << k;
  }
  // The streaming accessors mirror the last sample of the block.
  EXPECT_EQ(blocked.sine(), scalar.sine());
  EXPECT_EQ(blocked.cosine(), scalar.cosine());
}

TEST(BlockKernels, IqDemodulatorBlockMatchesScalarBitExact) {
  const auto x = noise(516, 47);
  Nco nco_a(kFs, 15e3), nco_b(kFs, 15e3);
  IqDemodulator scalar(kFs, 400.0), blocked(kFs, 400.0);

  std::vector<double> ci_ref(x.size()), cq_ref(x.size());
  std::vector<double> want_i(x.size()), want_q(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    ci_ref[k] = nco_a.step();
    cq_ref[k] = nco_a.cosine();
    const auto bb = scalar.step(x[k], ci_ref[k], cq_ref[k]);
    want_i[k] = bb.i;
    want_q[k] = bb.q;
  }

  std::vector<double> got_i(x.size()), got_q(x.size());
  std::size_t pos = 0, ci = 0;
  while (pos < x.size()) {
    const std::size_t n = std::min(kChunks[ci++ % std::size(kChunks)], x.size() - pos);
    blocked.step_block(std::span<const double>(x).subspan(pos, n),
                       std::span<const double>(ci_ref).subspan(pos, n),
                       std::span<const double>(cq_ref).subspan(pos, n),
                       std::span<double>(got_i).subspan(pos, n),
                       std::span<double>(got_q).subspan(pos, n));
    pos += n;
  }
  for (std::size_t k = 0; k < x.size(); ++k) {
    ASSERT_EQ(want_i[k], got_i[k]) << "i sample " << k;
    ASSERT_EQ(want_q[k], got_q[k]) << "q sample " << k;
  }
  EXPECT_EQ(blocked.output().i, scalar.output().i);
  EXPECT_EQ(blocked.output().q, scalar.output().q);
}

}  // namespace
}  // namespace ascp::dsp
