#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "dsp/cic.hpp"

namespace ascp::dsp {
namespace {

TEST(Cic, OutputRateIsInputOverR) {
  CicDecimator cic(3, 16);
  int outputs = 0;
  for (int i = 0; i < 1600; ++i)
    if (cic.push(1.0)) ++outputs;
  EXPECT_EQ(outputs, 100);
}

TEST(Cic, DcGainIsUnityAfterNormalization) {
  CicDecimator cic(3, 16, 16, 1.0);
  double last = 0.0;
  for (int i = 0; i < 3200; ++i)
    if (auto y = cic.push(0.5)) last = *y;
  EXPECT_NEAR(last, 0.5, 1e-3);
}

TEST(Cic, RawGainIsRToTheN) {
  CicDecimator cic(4, 8);
  EXPECT_DOUBLE_EQ(cic.raw_gain(), 4096.0);
}

TEST(Cic, PassesSlowSignal) {
  // 100 Hz signal at 240 kHz input, R=128 → output at 1.875 kHz follows it.
  const double fs = 240e3;
  CicDecimator cic(3, 128, 16, 1.0);
  std::vector<double> out;
  for (int i = 0; i < 480000; ++i) {
    if (auto y = cic.push(0.7 * std::sin(kTwoPi * 100.0 * i / fs))) out.push_back(*y);
  }
  double peak = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_NEAR(peak, 0.7, 0.02);
}

TEST(Cic, AttenuatesNearAliasBands)  {
  // Frequencies near multiples of fs/R fold onto baseband but arrive deeply
  // attenuated — the CIC's anti-alias property.
  const double fs = 240e3;
  const int r = 128;
  CicDecimator cic(3, r, 16, 1.0);
  const double f_near_null = fs / r * 1.02;  // just off the first null
  std::vector<double> out;
  for (int i = 0; i < 480000; ++i) {
    if (auto y = cic.push(std::sin(kTwoPi * f_near_null * i / fs))) out.push_back(*y);
  }
  double peak = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_LT(peak, 5e-4);
}

TEST(Cic, MagnitudeFormulaMatchesMeasurement) {
  const double fs = 240e3;
  const int r = 64;
  CicDecimator cic(2, r, 16, 1.0);
  const double f_test = 500.0;
  std::vector<double> out;
  for (int i = 0; i < 960000; ++i) {
    if (auto y = cic.push(std::sin(kTwoPi * f_test * i / fs))) out.push_back(*y);
  }
  double peak = 0.0;
  for (std::size_t i = out.size() / 2; i < out.size(); ++i) peak = std::max(peak, std::abs(out[i]));
  EXPECT_NEAR(peak, cic.magnitude(f_test, fs), 0.01);
}

TEST(Cic, MagnitudeAtDcIsOne) {
  CicDecimator cic(3, 128);
  EXPECT_DOUBLE_EQ(cic.magnitude(0.0, 240e3), 1.0);
}

TEST(Cic, NullsAtOutputRateMultiples) {
  CicDecimator cic(3, 128);
  const double fs = 240e3;
  EXPECT_LT(cic.magnitude(fs / 128.0, fs), 1e-9);
  EXPECT_LT(cic.magnitude(2.0 * fs / 128.0, fs), 1e-9);
}

TEST(Cic, ResetClearsState) {
  CicDecimator cic(3, 4, 16, 1.0);
  for (int i = 0; i < 40; ++i) cic.push(1.0);
  cic.reset();
  // After reset, the transient restarts from zero: first output is small.
  std::optional<double> first;
  for (int i = 0; i < 4 && !first; ++i) first = cic.push(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_NEAR(*first, 0.0, 1e-12);
}

TEST(Cic, RatioOneDegeneratesToUnity) {
  CicDecimator cic(1, 1, 16, 1.0);
  // N=1, R=1: y[n] = x[n] (integrator + differentiator cancel).
  std::vector<double> in{0.1, -0.3, 0.5, 0.9};
  for (double x : in) {
    auto y = cic.push(x);
    ASSERT_TRUE(y.has_value());
    EXPECT_NEAR(*y, x, 1e-4);
  }
}

// Stage-count sweep: more stages → more alias rejection at the folding band.
class CicStages : public ::testing::TestWithParam<int> {};

TEST_P(CicStages, AliasRejectionIsSingleStageToTheN) {
  const int n = GetParam();
  const double fs = 240e3;
  const double f_fold = fs / 32.0 * 0.9;
  CicDecimator multi(n, 32);
  CicDecimator one(1, 32);
  EXPECT_NEAR(multi.magnitude(f_fold, fs), std::pow(one.magnitude(f_fold, fs), n), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Stages, CicStages, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ascp::dsp
