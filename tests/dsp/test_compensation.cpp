#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dsp/compensation.hpp"

namespace ascp::dsp {
namespace {

TEST(Compensation, IdentityByDefault) {
  Compensation comp;
  EXPECT_DOUBLE_EQ(comp.apply(1.234, 25.0), 1.234);
  EXPECT_DOUBLE_EQ(comp.apply(1.234, 85.0), 1.234);
}

TEST(Compensation, StaticOffsetRemoved) {
  CompensationCoeffs c;
  c.offset = {0.5, 0.0, 0.0};
  Compensation comp(c);
  EXPECT_DOUBLE_EQ(comp.apply(0.5, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(comp.apply(1.5, 25.0), 1.0);
}

TEST(Compensation, TemperatureDependentOffset) {
  CompensationCoeffs c;
  c.offset = {0.1, 0.002, 0.0};  // drifts 2 m-units/°C
  Compensation comp(c);
  EXPECT_NEAR(comp.offset_at(85.0), 0.1 + 0.002 * 60.0, 1e-12);
  EXPECT_NEAR(comp.apply(0.22, 85.0), 0.0, 1e-12);
}

TEST(Compensation, ScalePolynomial) {
  CompensationCoeffs c;
  c.s0 = 2.0;
  c.s1 = 0.001;
  Compensation comp(c);
  EXPECT_DOUBLE_EQ(comp.scale_at(25.0), 2.0);
  EXPECT_NEAR(comp.scale_at(125.0), 2.0 * 1.1, 1e-12);
}

TEST(FitCompensation, RecoversQuadraticOffsetDrift) {
  // Synthesize a chain whose raw null drifts quadratically and whose gain
  // droops linearly; the fit must invert both.
  const std::vector<double> temps{-40.0, -10.0, 25.0, 60.0, 85.0};
  std::vector<double> offsets, gains;
  for (double t : temps) {
    const double dt = t - 25.0;
    offsets.push_back(0.05 + 1e-3 * dt + 2e-6 * dt * dt);
    gains.push_back(1.0 - 4e-4 * dt);  // raw units per °/s
  }
  const auto c = fit_compensation(temps, offsets, gains, 5.0e-3);  // 5 mV/°/s target
  Compensation comp(c);
  for (double t : temps) {
    const double dt = t - 25.0;
    const double raw_null = 0.05 + 1e-3 * dt + 2e-6 * dt * dt;
    const double raw_gain = 1.0 - 4e-4 * dt;
    // Null after compensation ≈ 0.
    EXPECT_NEAR(comp.apply(raw_null, t), 0.0, 1e-9) << t;
    // Sensitivity after compensation ≈ target.
    const double y100 = comp.apply(raw_null + raw_gain * 100.0, t);
    EXPECT_NEAR(y100 / 100.0, 5.0e-3, 5e-6) << t;
  }
}

TEST(FitCompensation, PerfectChainNeedsNoCorrection) {
  const std::vector<double> temps{-40.0, 25.0, 85.0};
  const std::vector<double> offsets{0.0, 0.0, 0.0};
  const std::vector<double> gains{1.0, 1.0, 1.0};
  const auto c = fit_compensation(temps, offsets, gains, 1.0);
  EXPECT_NEAR(c.offset[0], 0.0, 1e-12);
  EXPECT_NEAR(c.offset[1], 0.0, 1e-12);
  EXPECT_NEAR(c.s0, 1.0, 1e-12);
  EXPECT_NEAR(c.s1, 0.0, 1e-12);
}

TEST(FitCompensation, InterpolatesBetweenCalPoints) {
  // Calibrate at 3 points; check residual at an uncalibrated temperature
  // stays small for smooth drift (the over-temperature spec mechanism).
  const std::vector<double> temps{-40.0, 25.0, 85.0};
  std::vector<double> offsets, gains;
  for (double t : temps) {
    const double dt = t - 25.0;
    offsets.push_back(2e-4 * dt);
    gains.push_back(1.0 + 3e-4 * dt);
  }
  const auto c = fit_compensation(temps, offsets, gains, 1.0);
  Compensation comp(c);
  const double t_check = 60.0;
  const double dt = t_check - 25.0;
  const double raw = 2e-4 * dt + (1.0 + 3e-4 * dt) * 50.0;  // 50 °/s
  EXPECT_NEAR(comp.apply(raw, t_check), 50.0, 0.05);
}

TEST(Compensation, ApplyOrderSubtractThenScale) {
  CompensationCoeffs c;
  c.offset = {1.0, 0.0, 0.0};
  c.s0 = 3.0;
  Compensation comp(c);
  EXPECT_DOUBLE_EQ(comp.apply(2.0, 25.0), 3.0);  // (2−1)·3, not 2·3−1
}

}  // namespace
}  // namespace ascp::dsp
