#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/math.hpp"
#include "dsp/fir.hpp"

namespace ascp::dsp {
namespace {

TEST(Fir, ImpulseResponseEqualsTaps) {
  const std::vector<double> taps{0.25, 0.5, 0.25};
  FirFilter f(taps);
  std::vector<double> out;
  out.push_back(f.process(1.0));
  out.push_back(f.process(0.0));
  out.push_back(f.process(0.0));
  for (std::size_t i = 0; i < taps.size(); ++i) EXPECT_DOUBLE_EQ(out[i], taps[i]);
}

TEST(Fir, DcGainIsTapSum) {
  const std::vector<double> taps{0.1, 0.2, 0.3, 0.4};
  FirFilter f(taps);
  double y = 0.0;
  for (int i = 0; i < 20; ++i) y = f.process(1.0);
  EXPECT_NEAR(y, std::accumulate(taps.begin(), taps.end(), 0.0), 1e-12);
}

TEST(Fir, ResetClearsState) {
  FirFilter f({0.5, 0.5});
  f.process(7.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.process(0.0), 0.0);
}

TEST(Fir, LinearityAndTimeInvariance) {
  const auto taps = design_lowpass(31, 100.0, 1000.0);
  FirFilter f1(taps), f2(taps), f3(taps);
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.3 * i) + 0.2 * std::cos(1.1 * i);
  for (double xi : x) {
    const double y1 = f1.process(2.0 * xi);
    const double y2 = f2.process(xi);
    EXPECT_NEAR(y1, 2.0 * y2, 1e-12);
    (void)f3;
  }
}

TEST(FirDesign, LowpassUnityDcGain) {
  const auto taps = design_lowpass(63, 100.0, 1000.0);
  EXPECT_NEAR(fir_magnitude(taps, 0.0, 1000.0), 1.0, 1e-12);
}

TEST(FirDesign, LowpassAttenuatesStopband) {
  const auto taps = design_lowpass(63, 100.0, 1000.0);
  // Hamming window: ≥ 50 dB stopband rejection well past cutoff.
  EXPECT_LT(fir_magnitude(taps, 300.0, 1000.0), from_db20(-50.0));
  EXPECT_LT(fir_magnitude(taps, 450.0, 1000.0), from_db20(-50.0));
}

TEST(FirDesign, LowpassHalfPowerNearCutoff) {
  const auto taps = design_lowpass(127, 100.0, 1000.0);
  const double g = fir_magnitude(taps, 100.0, 1000.0);
  EXPECT_NEAR(g, 0.5, 0.08);  // window-method cutoff is the −6 dB point
}

TEST(FirDesign, LowpassIsSymmetricLinearPhase) {
  const auto taps = design_lowpass(41, 50.0, 500.0);
  for (std::size_t i = 0; i < taps.size() / 2; ++i)
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-14);
}

TEST(FirDesign, HighpassRejectsDcPassesHigh) {
  const auto taps = design_highpass(63, 100.0, 1000.0);
  EXPECT_NEAR(fir_magnitude(taps, 0.0, 1000.0), 0.0, 1e-3);
  EXPECT_NEAR(fir_magnitude(taps, 400.0, 1000.0), 1.0, 0.02);
}

TEST(FirDesign, BandpassPassesCentreRejectsEdges) {
  const auto taps = design_bandpass(101, 100.0, 200.0, 1000.0);
  EXPECT_NEAR(fir_magnitude(taps, std::sqrt(100.0 * 200.0), 1000.0), 1.0, 0.03);
  EXPECT_LT(fir_magnitude(taps, 20.0, 1000.0), 0.02);
  EXPECT_LT(fir_magnitude(taps, 420.0, 1000.0), 0.02);
}

TEST(FirFx, MatchesFloatForCoarseSignals) {
  const auto taps = design_lowpass(31, 1000.0, 10000.0);
  FirFilter ref(taps);
  FirFilterFx fx(taps, 16, 14, 24, 1.0);
  double max_err = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = 0.8 * std::sin(0.05 * i);
    max_err = std::max(max_err, std::abs(ref.process(x) - fx.process(x)));
  }
  // Quantization noise only: well under 1e-3 for 14-bit data registers.
  EXPECT_LT(max_err, 1e-3);
}

TEST(FirFx, CoarseQuantizationDegradesGracefully) {
  const auto taps = design_lowpass(31, 1000.0, 10000.0);
  FirFilterFx coarse(taps, 8, 8, 16, 1.0);
  FirFilterFx fine(taps, 16, 16, 28, 1.0);
  FirFilter ref(taps);
  double err_coarse = 0.0, err_fine = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = 0.8 * std::sin(0.05 * i);
    const double r = ref.process(x);
    err_coarse += std::abs(coarse.process(x) - r);
    err_fine += std::abs(fine.process(x) - r);
  }
  EXPECT_GT(err_coarse, err_fine * 3.0);
}

TEST(Fir, GroupDelayIsHalfOrder) {
  FirFilter f(design_lowpass(41, 50.0, 500.0));
  EXPECT_DOUBLE_EQ(f.group_delay(), 20.0);
}

// Parameterized sweep: stopband rejection improves with filter length.
class FirLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirLength, StopbandRejectionAtLeast40Db) {
  const auto taps = design_lowpass(GetParam(), 50.0, 1000.0);
  EXPECT_LT(fir_magnitude(taps, 250.0, 1000.0), from_db20(-40.0)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Lengths, FirLength, ::testing::Values(33, 63, 95, 127));

}  // namespace
}  // namespace ascp::dsp
