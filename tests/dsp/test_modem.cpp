#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "dsp/modem.hpp"
#include "dsp/nco.hpp"

namespace ascp::dsp {
namespace {

constexpr double kFs = 240e3;
constexpr double kF0 = 15e3;

TEST(IqDemod, RecoversInPhaseAmplitude) {
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  Iq out;
  for (int i = 0; i < 100000; ++i) {
    nco.step();
    const double sig = 0.8 * nco.sine();  // pure in-phase signal
    out = demod.step(sig, nco.sine(), nco.cosine());
  }
  EXPECT_NEAR(out.i, 0.8, 0.01);
  EXPECT_NEAR(out.q, 0.0, 0.01);
}

TEST(IqDemod, RecoversQuadratureAmplitude) {
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  Iq out;
  for (int i = 0; i < 100000; ++i) {
    nco.step();
    const double sig = 0.5 * nco.cosine();
    out = demod.step(sig, nco.sine(), nco.cosine());
  }
  EXPECT_NEAR(out.i, 0.0, 0.01);
  EXPECT_NEAR(out.q, 0.5, 0.01);
}

TEST(IqDemod, SeparatesMixedComponents) {
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  Iq out;
  for (int i = 0; i < 100000; ++i) {
    nco.step();
    const double sig = 0.3 * nco.sine() - 0.7 * nco.cosine();
    out = demod.step(sig, nco.sine(), nco.cosine());
  }
  EXPECT_NEAR(out.i, 0.3, 0.01);
  EXPECT_NEAR(out.q, -0.7, 0.01);
}

TEST(IqDemod, TracksBasebandModulation) {
  // AM at 30 Hz on the carrier: the demod I channel must follow it.
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  double peak = 0.0;
  for (int i = 0; i < 240000; ++i) {
    nco.step();
    const double mod = 0.5 * std::sin(kTwoPi * 30.0 * i / kFs);
    const auto out = demod.step(mod * nco.sine(), nco.sine(), nco.cosine());
    if (i > 120000) peak = std::max(peak, std::abs(out.i));
  }
  EXPECT_NEAR(peak, 0.5, 0.05);
}

TEST(IqDemod, RejectsOffCarrierInterference) {
  // A tone 5 kHz away from the carrier must be suppressed by the LPF.
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  Iq out;
  double worst = 0.0;
  for (int i = 0; i < 200000; ++i) {
    nco.step();
    const double interf = std::sin(kTwoPi * 20e3 * i / kFs);
    out = demod.step(interf, nco.sine(), nco.cosine());
    if (i > 100000) worst = std::max(worst, std::hypot(out.i, out.q));
  }
  EXPECT_LT(worst, 0.02);
}

TEST(IqDemod, PhaseErrorMixesChannels) {
  // A carrier phase error φ rotates (I,Q) by φ — the effect demod phase
  // trim must calibrate out in the gyro chain.
  Nco sig_nco(kFs, kF0);
  Nco ref_nco(kFs, kF0);
  const double phi = 0.2;
  // Skew the reference by φ: run it from a phase-offset start.
  IqDemodulator demod(kFs, 200.0);
  Iq out;
  for (int i = 0; i < 150000; ++i) {
    sig_nco.step();
    ref_nco.step();
    const double sig = 0.6 * std::sin(sig_nco.phase() + phi);
    out = demod.step(sig, ref_nco.sine(), ref_nco.cosine());
  }
  EXPECT_NEAR(out.i, 0.6 * std::cos(phi), 0.02);
  EXPECT_NEAR(out.q, 0.6 * std::sin(phi), 0.02);
}

TEST(IqDemod, ResetClearsOutputs) {
  Nco nco(kFs, kF0);
  IqDemodulator demod(kFs, 200.0);
  for (int i = 0; i < 1000; ++i) {
    nco.step();
    demod.step(nco.sine(), nco.sine(), nco.cosine());
  }
  demod.reset();
  EXPECT_DOUBLE_EQ(demod.output().i, 0.0);
  EXPECT_DOUBLE_EQ(demod.output().q, 0.0);
}

TEST(IqModulator, SynthesizesCarrierFromBaseband) {
  Nco nco(kFs, kF0);
  IqModulator mod(1.0);
  IqDemodulator demod(kFs, 200.0);
  // Round trip: modulate a DC (i,q) pair, demodulate it back.
  Iq bb{0.4, -0.25};
  Iq out;
  for (int i = 0; i < 150000; ++i) {
    nco.step();
    const double rf = mod.step(bb, nco.sine(), nco.cosine());
    out = demod.step(rf, nco.sine(), nco.cosine());
  }
  EXPECT_NEAR(out.i, 0.4, 0.01);
  EXPECT_NEAR(out.q, -0.25, 0.01);
}

TEST(IqModulator, ScaleApplies) {
  IqModulator mod(2.5);
  const double y = mod.step(Iq{1.0, 0.0}, 0.6, 0.8);
  EXPECT_DOUBLE_EQ(y, 2.5 * 0.6);
  mod.set_scale(1.0);
  EXPECT_DOUBLE_EQ(mod.step(Iq{0.0, 1.0}, 0.6, 0.8), 0.8);
}

}  // namespace
}  // namespace ascp::dsp
