#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/spectrum.hpp"
#include "dsp/nco.hpp"

namespace ascp::dsp {
namespace {

TEST(Nco, FrequencySetterRoundTrips) {
  Nco nco(240e3, 15e3);
  EXPECT_NEAR(nco.frequency(), 15e3, nco.resolution());
}

TEST(Nco, ResolutionIsFsOver2Pow32) {
  Nco nco(240e3, 15e3);
  EXPECT_DOUBLE_EQ(nco.resolution(), 240e3 / 4294967296.0);
}

TEST(Nco, OutputBounded) {
  Nco nco(240e3, 15e3);
  for (int i = 0; i < 10000; ++i) {
    nco.step();
    EXPECT_LE(std::abs(nco.sine()), 1.0 + 1e-9);
    EXPECT_LE(std::abs(nco.cosine()), 1.0 + 1e-9);
  }
}

TEST(Nco, GeneratesRequestedFrequency) {
  const double fs = 240e3, f0 = 15e3;
  Nco nco(fs, f0);
  std::vector<double> x(1 << 14);
  for (auto& v : x) v = nco.step();
  const auto est = estimate_tone(x, fs, f0);
  EXPECT_NEAR(est.amplitude, 1.0, 0.01);
}

TEST(Nco, QuadratureIs90Degrees) {
  Nco nco(240e3, 15e3);
  // cos should lead sin by 90°: cos[n]·sin[n] averages to 0, and
  // sin[n]·sin[n] averages to 0.5.
  double cross = 0.0, self = 0.0;
  const int n = 1 << 14;
  for (int i = 0; i < n; ++i) {
    nco.step();
    cross += nco.sine() * nco.cosine();
    self += nco.sine() * nco.sine();
  }
  EXPECT_NEAR(cross / n, 0.0, 1e-3);
  EXPECT_NEAR(self / n, 0.5, 1e-3);
}

TEST(Nco, SpectralPurityBetterThan60Db) {
  // Interpolated 1024-entry LUT: worst spur (excluding the Hann leakage
  // skirt around the carrier) below −60 dBc — far below the gyro chain's
  // noise floor.
  const double fs = 240e3, f0 = 14.9e3;
  Nco nco(fs, f0);
  std::vector<double> x(1 << 16);
  for (auto& v : x) v = nco.step();
  const auto psd = welch_psd(x, fs, 1 << 12);
  std::size_t peak = 1;
  for (std::size_t i = 1; i < psd.power.size(); ++i)
    if (psd.power[i] > psd.power[peak]) peak = i;
  double spur = 0.0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (i + 16 < peak || i > peak + 16) spur = std::max(spur, psd.power[i]);
  }
  EXPECT_LT(spur / psd.power[peak], 1e-6);  // −60 dB
}

TEST(Nco, FrequencyClampsAtNyquist) {
  Nco nco(1000.0, 900.0);
  EXPECT_LT(nco.frequency(), 500.0);
  nco.set_frequency(-50.0);
  EXPECT_DOUBLE_EQ(nco.frequency(), 0.0);
}

TEST(Nco, AdjustFrequencyAccumulates) {
  Nco nco(240e3, 15e3);
  nco.adjust_frequency(100.0);
  EXPECT_NEAR(nco.frequency(), 15100.0, 0.01);
  nco.adjust_frequency(-200.0);
  EXPECT_NEAR(nco.frequency(), 14900.0, 0.01);
}

TEST(Nco, PhaseAdvancesPerSample) {
  const double fs = 1000.0, f0 = 100.0;
  Nco nco(fs, f0);
  nco.step();
  const double p1 = nco.phase();
  nco.step();
  const double p2 = nco.phase();
  EXPECT_NEAR(wrap_phase(p2 - p1), kTwoPi * f0 / fs, 1e-6);
}

TEST(Nco, ResetPhaseRestartsAtZero) {
  Nco nco(1000.0, 100.0);
  for (int i = 0; i < 7; ++i) nco.step();
  nco.reset_phase();
  EXPECT_DOUBLE_EQ(nco.phase(), 0.0);
}

}  // namespace
}  // namespace ascp::dsp
