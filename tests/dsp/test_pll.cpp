// PLL closed-loop tests against a discrete-time resonator with a known
// resonance — the sample-domain equivalent of the MEMS drive mode. The
// impulse-invariant two-pole resonator has exactly −90° phase at its pole
// frequency in the high-Q limit, matching the mechanical displacement
// response the PLL is designed to lock onto.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "dsp/pll.hpp"

namespace ascp::dsp {
namespace {

/// Impulse-invariant resonator: poles at r·e^{±jΩ0}.
class TestResonator {
 public:
  TestResonator(double f0, double q, double fs) { retune(f0, q, fs); }

  void retune(double f0, double q, double fs) {
    const double w0 = kTwoPi * f0;
    const double r = std::exp(-w0 / (2.0 * q) / fs);
    const double omega = w0 / fs;
    a1_ = 2.0 * r * std::cos(omega);
    a2_ = -r * r;
    // Normalize steady-state gain at resonance to ~1 for unit drive:
    // |H(e^{jΩ0})| = 1 / ((1−r)·|1−r·e^{-j2Ω0}|) for the z^{-1} numerator.
    gain_ = (1.0 - r) * std::sqrt(1.0 + r * r - 2.0 * r * std::cos(2 * omega));
  }

  double step(double x) {
    const double y = a1_ * y1_ + a2_ * y2_ + gain_ * x1_;
    y2_ = y1_;
    y1_ = y;
    x1_ = x;
    return y;
  }

 private:
  double a1_ = 0.0, a2_ = 0.0, gain_ = 1.0;
  double y1_ = 0.0, y2_ = 0.0, x1_ = 0.0;
};

PllConfig test_config() {
  PllConfig cfg;
  cfg.fs = 240e3;
  cfg.f_center = 15e3;
  return cfg;
}

/// Run the closed loop for `seconds`, returns final PLL state.
void run_loop(Pll& pll, TestResonator& res, double seconds, double fs = 240e3) {
  const int n = static_cast<int>(seconds * fs);
  double pickoff = 0.0;
  for (int i = 0; i < n; ++i) {
    const double drive = pll.step(pickoff);
    pickoff = res.step(drive);
  }
}

TEST(Pll, LocksToResonatorAtCentre) {
  Pll pll(test_config());
  TestResonator res(15e3, 1000.0, 240e3);
  run_loop(pll, res, 0.3);
  EXPECT_TRUE(pll.locked());
  EXPECT_NEAR(pll.frequency(), 15e3, 10.0);
  EXPECT_LT(std::abs(pll.phase_error()), 0.05);
}

TEST(Pll, LocksToOffsetResonance) {
  // Resonance 400 Hz above the NCO start — the PLL must pull in.
  Pll pll(test_config());
  TestResonator res(15.4e3, 1000.0, 240e3);
  run_loop(pll, res, 0.6);
  EXPECT_TRUE(pll.locked());
  EXPECT_NEAR(pll.frequency(), 15.4e3, 15.0);
}

TEST(Pll, LocksBelowCentre) {
  Pll pll(test_config());
  TestResonator res(14.7e3, 1000.0, 240e3);
  run_loop(pll, res, 0.6);
  EXPECT_TRUE(pll.locked());
  EXPECT_NEAR(pll.frequency(), 14.7e3, 15.0);
}

TEST(Pll, TracksResonanceDrift) {
  // Lock, then shift the resonance (temperature drift) — the PLL re-tracks.
  Pll pll(test_config());
  TestResonator res(15e3, 1000.0, 240e3);
  run_loop(pll, res, 0.4);
  ASSERT_TRUE(pll.locked());
  res.retune(15.1e3, 1000.0, 240e3);
  run_loop(pll, res, 0.4);
  EXPECT_TRUE(pll.locked());
  EXPECT_NEAR(pll.frequency(), 15.1e3, 15.0);
}

TEST(Pll, NoLockWithoutSignal) {
  Pll pll(test_config());
  for (int i = 0; i < 100000; ++i) pll.step(0.0);
  EXPECT_FALSE(pll.locked());
  // Frequency must not run away with zero input.
  EXPECT_NEAR(pll.frequency(), 15e3, 50.0);
}

TEST(Pll, VcoControlConvergesToFrequencyOffset) {
  Pll pll(test_config());
  TestResonator res(15.3e3, 1000.0, 240e3);
  run_loop(pll, res, 0.8);
  ASSERT_TRUE(pll.locked());
  // Integrator carries the full offset once the proportional term ≈ 0.
  EXPECT_NEAR(pll.vco_control(), 300.0, 20.0);
}

TEST(Pll, FrequencyStaysWithinRails) {
  PllConfig cfg = test_config();
  cfg.f_min = 14e3;
  cfg.f_max = 16e3;
  Pll pll(cfg);
  // Resonance outside the rails: loop saturates at the rail, never beyond.
  TestResonator res(18e3, 500.0, 240e3);
  run_loop(pll, res, 0.5);
  EXPECT_LE(pll.frequency(), 16e3 + 1.0);
  EXPECT_GE(pll.frequency(), 14e3 - 1.0);
}

TEST(Pll, ResetRestoresInitialState) {
  Pll pll(test_config());
  TestResonator res(15.2e3, 1000.0, 240e3);
  run_loop(pll, res, 0.4);
  pll.reset();
  EXPECT_FALSE(pll.locked());
  EXPECT_NEAR(pll.frequency(), 15e3, 1.0);
  EXPECT_DOUBLE_EQ(pll.vco_control(), 0.0);
}

TEST(Pll, AmplitudeEstimateMatchesPickoff) {
  Pll pll(test_config());
  TestResonator res(15e3, 1000.0, 240e3);
  run_loop(pll, res, 0.5);
  // Resonator normalized to ~unit gain; drive is a unit sine ⇒ pickoff ≈ 1.
  EXPECT_NEAR(pll.amplitude(), 1.0, 0.15);
}

TEST(Pll, LockLossAndRelock) {
  // Drop the pickoff mid-run (drive interconnect failure): the lock
  // indicator must deassert within a bounded number of samples, and relock
  // within a bounded time once the resonator is reconnected.
  Pll pll(test_config());
  TestResonator res(15e3, 1000.0, 240e3);
  run_loop(pll, res, 0.4);
  ASSERT_TRUE(pll.locked());

  // Open the pickoff: the PLL sees silence. The amplitude qualifier in the
  // lock detector must drop lock once the 400 Hz detector LPF decays.
  int unlock_at = -1;
  for (int i = 0; i < 10000; ++i) {
    pll.step(0.0);
    if (!pll.locked()) {
      unlock_at = i;
      break;
    }
  }
  ASSERT_GE(unlock_at, 0) << "lock never deasserted on a dead pickoff";
  EXPECT_LE(unlock_at, 5000);  // ≈20 ms at 240 kHz

  // Reconnect: relock within a bounded reacquisition time. The resonator
  // kept ringing down meanwhile, so this is a genuine re-acquisition.
  int relock_at = -1;
  double pickoff = 0.0;
  for (int i = 0; i < 250000; ++i) {
    const double drive = pll.step(pickoff);
    pickoff = res.step(drive);
    if (pll.locked()) {
      relock_at = i;
      break;
    }
  }
  ASSERT_GE(relock_at, 0) << "PLL never relocked after reconnect";
  EXPECT_LE(relock_at, 200000);  // < ~0.84 s at 240 kHz
  EXPECT_NEAR(pll.frequency(), 15e3, 20.0);
}

// Sweep over resonator Q: lock must succeed from low-Q (wide, easy) to
// high-Q (narrow, slow ring-up) mechanics.
class PllQSweep : public ::testing::TestWithParam<double> {};

TEST_P(PllQSweep, LocksAcrossQRange) {
  Pll pll(test_config());
  TestResonator res(15.15e3, GetParam(), 240e3);
  run_loop(pll, res, 1.0);
  EXPECT_TRUE(pll.locked()) << "Q=" << GetParam();
  EXPECT_NEAR(pll.frequency(), 15.15e3, 20.0) << "Q=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Qs, PllQSweep, ::testing::Values(200.0, 1000.0, 5000.0, 20000.0));

}  // namespace
}  // namespace ascp::dsp
