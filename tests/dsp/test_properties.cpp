// Randomized DSP kernel properties. The fixed-chunk bit-exactness suite
// (test_block_kernels.cpp) pins known-awkward partitions; here the
// partitions, inputs and designs are themselves drawn from a seeded Rng so
// each run sweeps a different corner of the legal space deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/modem.hpp"
#include "dsp/nco.hpp"

namespace ascp::dsp {
namespace {

constexpr double kFs = 240e3;

std::vector<double> noise(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.gaussian(0.6) + 0.05;
  return v;
}

/// Random partition of [0, n) into chunks of 1..97 samples.
std::vector<std::size_t> random_chunks(std::size_t n, Rng& rng) {
  std::vector<std::size_t> chunks;
  std::size_t left = n;
  while (left > 0) {
    const std::size_t c = std::min<std::size_t>(left, 1 + rng.next_u64() % 97);
    chunks.push_back(c);
    left -= c;
  }
  return chunks;
}

TEST(DspProperties, BiquadBlockBitIdenticalUnderRandomPartitions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xB1);
    const auto in = noise(700, rng);
    const double fc = rng.uniform(50.0, 0.4 * kFs);
    const double q = rng.uniform(0.4, 8.0);
    Biquad scalar(design_biquad_lowpass(fc, q, kFs));
    Biquad blocked(scalar.coeffs());

    std::vector<double> want(in.size());
    for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

    std::vector<double> got = in;
    std::size_t pos = 0;
    for (const std::size_t c : random_chunks(in.size(), rng)) {
      blocked.process_block(std::span<double>(got).subspan(pos, c));
      pos += c;
    }
    for (std::size_t k = 0; k < in.size(); ++k)
      ASSERT_EQ(want[k], got[k]) << "seed " << seed << " sample " << k;
  }
}

TEST(DspProperties, FirBlockBitIdenticalUnderRandomPartitions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xF1);
    const auto in = noise(700, rng);
    const int taps = 15 + 2 * static_cast<int>(rng.next_u64() % 40);  // odd, 15..93
    const auto h = design_lowpass(taps, rng.uniform(40.0, 400.0), kFs / 128.0);
    FirFilter scalar(h), blocked(h);

    std::vector<double> want(in.size());
    for (std::size_t k = 0; k < in.size(); ++k) want[k] = scalar.process(in[k]);

    std::vector<double> got(in.size());
    std::size_t pos = 0;
    for (const std::size_t c : random_chunks(in.size(), rng)) {
      blocked.process_block(std::span<const double>(in).subspan(pos, c),
                            std::span<double>(got).subspan(pos, c));
      pos += c;
    }
    for (std::size_t k = 0; k < in.size(); ++k)
      ASSERT_EQ(want[k], got[k]) << "seed " << seed << " sample " << k;
  }
}

TEST(DspProperties, CicBlockBitIdenticalUnderRandomPartitions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xC1);
    const int stages = 1 + static_cast<int>(rng.next_u64() % 4);
    const int ratio = 1 << (3 + rng.next_u64() % 5);  // 8..128
    const auto in = noise(static_cast<std::size_t>(ratio) * 5 + rng.next_u64() % 100, rng);
    CicDecimator scalar(stages, ratio, 16, 2.5), blocked(stages, ratio, 16, 2.5);

    std::vector<double> want;
    for (double x : in)
      if (const auto y = scalar.push(x)) want.push_back(*y);

    std::vector<double> got(in.size() / static_cast<std::size_t>(ratio) + 1);
    std::size_t n_out = 0, pos = 0;
    for (const std::size_t c : random_chunks(in.size(), rng)) {
      n_out += blocked.push_block(std::span<const double>(in).subspan(pos, c),
                                  std::span<double>(got).subspan(n_out));
      pos += c;
    }
    ASSERT_EQ(n_out, want.size()) << "seed " << seed;
    for (std::size_t k = 0; k < want.size(); ++k)
      ASSERT_EQ(want[k], got[k]) << "seed " << seed << " sample " << k;
  }
}

TEST(DspProperties, NcoAndDemodBlockBitIdenticalUnderRandomPartitions) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xD1);
    const double f0 = rng.uniform(5e3, 40e3);
    const auto x = noise(700, rng);
    Nco nco_s(kFs, f0), nco_b(kFs, f0);
    IqDemodulator dm_s(kFs, 400.0), dm_b(kFs, 400.0);

    std::vector<double> ci(x.size()), cq(x.size()), want_i(x.size()), want_q(x.size());
    for (std::size_t k = 0; k < x.size(); ++k) {
      ci[k] = nco_s.step();
      cq[k] = nco_s.cosine();
      const auto bb = dm_s.step(x[k], ci[k], cq[k]);
      want_i[k] = bb.i;
      want_q[k] = bb.q;
    }

    std::vector<double> gci(x.size()), gcq(x.size()), got_i(x.size()), got_q(x.size());
    std::size_t pos = 0;
    for (const std::size_t c : random_chunks(x.size(), rng)) {
      nco_b.step_block(std::span<double>(gci).subspan(pos, c),
                       std::span<double>(gcq).subspan(pos, c));
      dm_b.step_block(std::span<const double>(x).subspan(pos, c),
                      std::span<const double>(gci).subspan(pos, c),
                      std::span<const double>(gcq).subspan(pos, c),
                      std::span<double>(got_i).subspan(pos, c),
                      std::span<double>(got_q).subspan(pos, c));
      pos += c;
    }
    for (std::size_t k = 0; k < x.size(); ++k) {
      ASSERT_EQ(ci[k], gci[k]) << "seed " << seed << " carrier sample " << k;
      ASSERT_EQ(want_i[k], got_i[k]) << "seed " << seed << " i sample " << k;
      ASSERT_EQ(want_q[k], got_q[k]) << "seed " << seed << " q sample " << k;
    }
  }
}

TEST(DspProperties, RandomLegalBiquadDesignsAreStable) {
  // Every RBJ design over the legal (fc, Q) space must sit inside the
  // stability triangle |a2| < 1, |a1| < 1 + a2, and produce bounded output
  // for bounded input.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x51AB);
    const double fc = rng.uniform(20.0, 0.45 * kFs);
    const double q = rng.uniform(0.35, 12.0);
    BiquadCoeffs c;
    switch (seed % 4) {
      case 0: c = design_biquad_lowpass(fc, q, kFs); break;
      case 1: c = design_biquad_highpass(fc, q, kFs); break;
      case 2: c = design_biquad_bandpass(fc, q, kFs); break;
      default: c = design_biquad_notch(fc, q, kFs); break;
    }
    ASSERT_LT(std::abs(c.a2), 1.0) << "seed " << seed << " fc=" << fc << " q=" << q;
    ASSERT_LT(std::abs(c.a1), 1.0 + c.a2) << "seed " << seed << " fc=" << fc << " q=" << q;

    Biquad f(c);
    double peak = 0.0;
    for (int k = 0; k < 5000; ++k)
      peak = std::max(peak, std::abs(f.process(rng.uniform(-1.0, 1.0))));
    // Worst-case resonant gain at Q=12 stays well under this; instability
    // would blow through it within a few thousand samples.
    ASSERT_LT(peak, 100.0) << "seed " << seed << " fc=" << fc << " q=" << q;
  }
}

TEST(DspProperties, CicOutputBoundedByInputExtremes) {
  // The CIC impulse response is a nonnegative boxcar cascade normalized to
  // unit DC gain, so outputs are convex combinations of inputs (up to the
  // input quantizer's LSB): min x − lsb ≤ y ≤ max x + lsb.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xCCC);
    const int stages = 1 + static_cast<int>(rng.next_u64() % 4);
    const int ratio = 1 << (3 + rng.next_u64() % 5);
    const double fs_v = 2.5;
    CicDecimator cic(stages, ratio, 16, fs_v);
    const double lsb = 2.0 * fs_v / 65536.0;
    const double amp = rng.uniform(0.2, fs_v);
    for (int k = 0; k < ratio * 40; ++k) {
      if (const auto y = cic.push(rng.uniform(-amp, amp))) {
        ASSERT_LE(std::abs(*y), amp + lsb) << "seed " << seed << " k=" << k;
      }
    }
  }
}

TEST(DspProperties, CicDcGainIsExactlyNormalized) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 0xDC);
    const int stages = 1 + static_cast<int>(rng.next_u64() % 4);
    const int ratio = 1 << (3 + rng.next_u64() % 5);
    CicDecimator cic(stages, ratio, 16, 2.5);
    const double dc = rng.uniform(-2.0, 2.0);
    double last = 0.0;
    for (int k = 0; k < ratio * (stages + 4); ++k)
      if (const auto y = cic.push(dc)) last = *y;
    // After the N-stage pipeline fills, a DC input must come out at the
    // input value to within the 16-bit input quantizer's LSB.
    EXPECT_NEAR(last, dc, 2.0 * 2.5 / 65536.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ascp::dsp
