// Blackbox tests: the framed crash-image format (round-trip, distinct error
// messages for every corruption class, non-throwing inspect), the
// supervisor's dump-on-failure path, and the headline forensics invariant —
// a `.blackbox` image replays the wrecked instance's exact output hash,
// including when the embedded checkpoint is itself corrupt. Plus the obs
// bit-identity extension: a recorder-armed channel, solo or supervised at
// any thread count, streams bit-identically to a detached twin.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/state_archive.hpp"
#include "obs/observability.hpp"
#include "platform/engine/blackbox.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/dtc.hpp"

namespace ascp::engine {
namespace {

constexpr double kTickSeconds = 0.002;

BlackboxImage sample_image() {
  BlackboxImage img;
  img.kind = static_cast<std::uint32_t>(ChannelKind::GyroIdeal);
  img.seed = 0xDEADBEEFCAFEull;
  img.channel_index = 3;
  img.fleet_tick = 17;
  img.reason = "injected crash";
  img.dtcs = 0x4000;
  img.restarts = 2;
  img.health = 1;
  img.rate_dps = 42.5;
  img.temp_c = 31.0;
  img.crash_ticks = 123456;
  img.crash_hash = 0x1122334455667788ull;
  img.crash_outputs = 120;
  img.checkpoint_tick = 12;
  img.checkpoint = {1, 2, 3, 4, 5};

  BlackboxFlightRecord r;
  r.t_sim = 0.5;
  r.kind = 1;
  r.name = "channel.outputs";
  r.a = 64.0;
  img.records.push_back(r);

  BlackboxSpan s;
  s.trace_id = 7;
  s.span_id = 9;
  s.parent_id = 8;
  s.name = "restart";
  s.category = 2;
  s.t_begin = 0.1;
  s.t_end = 0.2;
  s.k0 = "channel";
  s.v0 = 3.0;
  img.fleet_spans.push_back(s);

  img.counters.push_back({"fleet.restarts", 2.0});
  img.gauges.push_back({"queue.depth", 17.0});
  return img;
}

TEST(Blackbox, EncodeDecodeRoundTripsEveryField) {
  const BlackboxImage img = sample_image();
  const auto bytes = encode_blackbox(img);
  ASSERT_GT(bytes.size(), kBlackboxHeaderSize);

  const BlackboxImage back = decode_blackbox(bytes);
  EXPECT_EQ(back.kind, img.kind);
  EXPECT_EQ(back.seed, img.seed);
  EXPECT_EQ(back.channel_index, 3u);
  EXPECT_EQ(back.fleet_tick, 17);
  EXPECT_EQ(back.reason, "injected crash");
  EXPECT_EQ(back.dtcs, 0x4000);
  EXPECT_EQ(back.restarts, 2);
  EXPECT_EQ(back.health, 1);
  EXPECT_DOUBLE_EQ(back.rate_dps, 42.5);
  EXPECT_DOUBLE_EQ(back.temp_c, 31.0);
  EXPECT_EQ(back.crash_ticks, 123456);
  EXPECT_EQ(back.crash_hash, img.crash_hash);
  EXPECT_EQ(back.crash_outputs, 120u);
  EXPECT_EQ(back.checkpoint_tick, 12);
  EXPECT_EQ(back.checkpoint, img.checkpoint);
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].name, "channel.outputs");
  EXPECT_DOUBLE_EQ(back.records[0].a, 64.0);
  EXPECT_TRUE(back.channel_spans.empty());
  ASSERT_EQ(back.fleet_spans.size(), 1u);
  EXPECT_EQ(back.fleet_spans[0].name, "restart");
  EXPECT_EQ(back.fleet_spans[0].parent_id, 8u);
  EXPECT_EQ(back.fleet_spans[0].k0, "channel");
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].name, "fleet.restarts");
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(back.gauges[0].value, 17.0);
}

TEST(Blackbox, InspectParsesHeaderWithoutThrowing) {
  const auto bytes = encode_blackbox(sample_image());
  BlackboxInfo info;
  ASSERT_TRUE(inspect_blackbox(bytes, &info));
  EXPECT_EQ(info.version, kBlackboxVersion);
  EXPECT_EQ(info.kind, static_cast<std::uint32_t>(ChannelKind::GyroIdeal));
  EXPECT_EQ(info.payload_len, bytes.size() - kBlackboxHeaderSize);
  EXPECT_TRUE(info.crc_ok);

  // Bit-rot is visible through inspect without a throw.
  auto bad = bytes;
  bad[kBlackboxHeaderSize + bad.size() / 2] ^= 0x10;
  ASSERT_TRUE(inspect_blackbox(bad, &info));
  EXPECT_FALSE(info.crc_ok);

  // Too-short and wrong-magic streams are the only false cases.
  EXPECT_FALSE(inspect_blackbox({1, 2, 3}, &info));
  auto wrong = bytes;
  wrong[0] = 'X';
  EXPECT_FALSE(inspect_blackbox(wrong, &info));
}

TEST(Blackbox, DistinctErrorsPerCorruptionClass) {
  const auto bytes = encode_blackbox(sample_image());

  const auto message = [](const std::vector<std::uint8_t>& b) -> std::string {
    try {
      decode_blackbox(b);
    } catch (const StateError& e) {
      return e.what();
    }
    return "";
  };

  // No header at all.
  EXPECT_NE(message({1, 2, 3}).find("blackbox truncated: no header"), std::string::npos);

  // Wrong magic — a checkpoint stream must not decode as a blackbox.
  auto wrong = bytes;
  wrong[3] = 'Z';
  EXPECT_NE(message(wrong).find("blackbox bad magic"), std::string::npos);

  // Future version.
  auto vfut = bytes;
  vfut[8] = 99;  // little-endian version field at offset 8
  EXPECT_NE(message(vfut).find("version 99 unsupported"), std::string::npos);
  EXPECT_NE(message(vfut).find("blackbox"), std::string::npos);

  // Truncated payload.
  auto trunc = bytes;
  trunc.resize(bytes.size() - 7);
  EXPECT_NE(message(trunc).find("blackbox truncated: payload shorter than declared"),
            std::string::npos);

  // Single bit flip anywhere in the payload → CRC mismatch.
  auto flip = bytes;
  flip[kBlackboxHeaderSize + flip.size() / 3] ^= 0x01;
  EXPECT_NE(message(flip).find("blackbox CRC mismatch: payload corrupted"),
            std::string::npos);

  // All five classes produce *blackbox* errors, never "checkpoint …".
  for (const auto& m :
       {message({1, 2, 3}), message(wrong), message(vfut), message(trunc), message(flip)})
    EXPECT_EQ(m.find("checkpoint"), std::string::npos) << m;
}

TEST(Blackbox, SupervisorDumpsOnExceptionAndReplayReproducesHash) {
  std::vector<FleetChannelSpec> specs(2);
  specs[0].config.kind = ChannelKind::GyroIdeal;
  specs[1].config.kind = ChannelKind::Adxrs300;
  std::atomic<int> crashes{0};
  specs[1].before_advance = [&crashes](long tick) {
    if (tick == 6 && crashes.fetch_add(1) == 0) throw std::runtime_error("injected crash");
  };

  FleetConfig fc;
  fc.root_seed = 77;
  fc.threads = 2;
  fc.tick_seconds = kTickSeconds;
  fc.checkpoint_interval = 3;
  fc.flight_recorders = true;
  obs::Observability obs;
  fc.metrics = &obs.metrics;
  fc.events = &obs.events;
  fc.spans = &obs.spans;
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> dumps;
  fc.blackbox_sink = [&dumps](std::size_t ch, const std::vector<std::uint8_t>& image) {
    dumps.emplace_back(ch, image);
  };
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(10);

  EXPECT_EQ(fleet.stats().restarts, 1);
  EXPECT_EQ(fleet.stats().blackbox_dumps, 1);
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(dumps[0].first, 1u);

  const BlackboxImage img = decode_blackbox(dumps[0].second);
  EXPECT_EQ(img.kind, static_cast<std::uint32_t>(ChannelKind::Adxrs300));
  EXPECT_EQ(img.channel_index, 1u);
  EXPECT_EQ(img.reason, "injected crash");
  EXPECT_NE(img.dtcs & safety::kDtcEngineFault, 0);
  // The failed tick is counted before handle_failures runs, so the dump is
  // stamped with the tick after the crash tick.
  EXPECT_EQ(img.fleet_tick, 7);
  EXPECT_GT(img.crash_ticks, 0);
  EXPECT_FALSE(img.checkpoint.empty());  // last-good at tick 6 exists
  EXPECT_GT(img.records.size(), 0u);     // armed recorder ring travelled along
  EXPECT_GT(img.fleet_spans.size(), 0u); // causal context travelled along

  // The headline invariant: the image alone reproduces the failure state.
  const BlackboxReplay rep = replay_blackbox(img);
  EXPECT_TRUE(rep.checkpoint_used);
  EXPECT_FALSE(rep.checkpoint_corrupt);
  EXPECT_EQ(rep.replay_ticks, img.crash_ticks);
  EXPECT_EQ(rep.replay_hash, img.crash_hash);
  EXPECT_EQ(rep.replay_outputs, img.crash_outputs);
  EXPECT_TRUE(rep.hash_match);

  // The fleet spans narrate the incident lifecycle.
  bool saw_exception = false, saw_restart = false;
  obs.spans.for_each([&](const obs::Span& s) {
    if (std::string(s.name) == "channel_exception") saw_exception = true;
    if (std::string(s.name) == "restart") saw_restart = true;
  });
  EXPECT_TRUE(saw_exception);
  EXPECT_TRUE(saw_restart);
}

TEST(Blackbox, CorruptEmbeddedCheckpointDemotesToColdReplayStillBitExact) {
  std::vector<FleetChannelSpec> specs(1);
  specs[0].config.kind = ChannelKind::Gyrostar;
  std::atomic<int> crashes{0};
  specs[0].before_advance = [&crashes](long tick) {
    if (tick == 7 && crashes.fetch_add(1) == 0) throw std::runtime_error("crash");
  };

  FleetConfig fc;
  fc.root_seed = 31;
  fc.tick_seconds = kTickSeconds;
  fc.checkpoint_interval = 3;
  fc.flight_recorders = true;
  std::vector<std::vector<std::uint8_t>> dumps;
  fc.blackbox_sink = [&dumps](std::size_t, const std::vector<std::uint8_t>& image) {
    dumps.push_back(image);
  };
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(6);
  fleet.corrupt_last_checkpoint(0);  // sabotage BEFORE the crash dump happens
  fleet.run_ticks(4);

  ASSERT_EQ(dumps.size(), 1u);
  const BlackboxImage img = decode_blackbox(dumps[0]);
  EXPECT_FALSE(img.checkpoint.empty());  // carried verbatim, corrupt and all

  const BlackboxReplay rep = replay_blackbox(img);
  EXPECT_FALSE(rep.checkpoint_used);
  EXPECT_TRUE(rep.checkpoint_corrupt);  // detected exactly like the supervisor
  EXPECT_TRUE(rep.hash_match);          // cold replay still reproduces the hash
}

TEST(Blackbox, QuarantinedChannelLeavesReplayableImages) {
  std::vector<FleetChannelSpec> specs(1);
  specs[0].config.kind = ChannelKind::GyroIdeal;
  specs[0].before_advance = [](long tick) {
    if (tick >= 5) throw std::runtime_error("persistent crasher");
  };

  FleetConfig fc;
  fc.root_seed = 55;
  fc.tick_seconds = kTickSeconds;
  fc.checkpoint_interval = 2;
  fc.max_restarts = 2;
  fc.backoff_base_ticks = 1;
  fc.backoff_cap_ticks = 1;
  fc.flight_recorders = true;
  std::vector<std::vector<std::uint8_t>> dumps;
  fc.blackbox_sink = [&dumps](std::size_t, const std::vector<std::uint8_t>& image) {
    dumps.push_back(image);
  };
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(16);

  ASSERT_EQ(fleet.health(0), ChannelHealth::Quarantined);
  // One dump per restart_channel entry: max_restarts restarts + the final
  // quarantining failure.
  EXPECT_EQ(fleet.stats().blackbox_dumps, fc.max_restarts + 1);
  ASSERT_EQ(dumps.size(), static_cast<std::size_t>(fc.max_restarts) + 1);
  for (const auto& bytes : dumps) {
    const BlackboxImage img = decode_blackbox(bytes);
    const BlackboxReplay rep = replay_blackbox(img);
    EXPECT_TRUE(rep.hash_match) << "dump at fleet tick " << img.fleet_tick;
  }
  // The last image records the quarantine decision context.
  const BlackboxImage last = decode_blackbox(dumps.back());
  EXPECT_EQ(last.restarts, fc.max_restarts);
  EXPECT_EQ(last.reason, "persistent crasher");
}

TEST(Blackbox, RecorderArmedChannelIsBitIdenticalSoloAndUnderFarm) {
  // Obs-on/off hash equality extended to the recorder: detached, obs-only
  // and recorder-armed twins of the same seed stream identical hashes.
  ChannelConfig base;
  base.kind = ChannelKind::GyroIdeal;
  base.seed = 99;
  ChannelConfig with_obs = base;
  with_obs.with_obs = true;
  ChannelConfig with_rec = base;
  with_rec.with_flight_recorder = true;

  ConditioningChannel detached(base), obs_on(with_obs), rec_on(with_rec);
  const long ticks = std::llround(0.02 * detached.base_rate_hz());
  detached.advance(ticks);
  obs_on.advance(ticks);
  rec_on.advance(ticks);
  EXPECT_EQ(detached.output_hash(), obs_on.output_hash());
  EXPECT_EQ(detached.output_hash(), rec_on.output_hash());
  ASSERT_NE(rec_on.flight_recorder(), nullptr);
  EXPECT_GT(rec_on.flight_recorder()->total(), 0u);
  EXPECT_EQ(obs_on.flight_recorder(), nullptr);  // armed only when asked

  // Same equality through the supervised fleet at 1 vs 4 worker threads.
  const auto fleet_hashes = [](unsigned threads) {
    std::vector<FleetChannelSpec> specs(3);
    specs[0].config.kind = ChannelKind::GyroIdeal;
    specs[1].config.kind = ChannelKind::Adxrs300;
    specs[2].config.kind = ChannelKind::Gyrostar;
    FleetConfig fc;
    fc.root_seed = 12;
    fc.threads = threads;
    fc.tick_seconds = kTickSeconds;
    fc.flight_recorders = true;
    FleetSupervisor fleet(std::move(specs), fc);
    fleet.run_ticks(8);
    std::vector<std::uint64_t> h;
    for (std::size_t i = 0; i < fleet.size(); ++i) h.push_back(fleet.channel(i).output_hash());
    return h;
  };
  EXPECT_EQ(fleet_hashes(1), fleet_hashes(4));
}

}  // namespace
}  // namespace ascp::engine
