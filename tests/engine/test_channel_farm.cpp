// Channel-farm engine tests: per-channel seed derivation, cross-thread
// bit-determinism (the farm's core guarantee), and multi-call phase
// continuity. These run real conditioning pipelines, so simulated durations
// are kept short.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "platform/engine/channel_farm.hpp"
#include "safety/fault_injection.hpp"
#include "sensor/stimulus_source.hpp"

namespace ascp::engine {
namespace {

// A mixed fleet: platform customizations at both fidelities (one with the
// safety supervisor + fault campaign active) and both analog baselines.
std::vector<ChannelConfig> mixed_fleet() {
  std::vector<ChannelConfig> specs;
  for (int i = 0; i < 2; ++i) {
    ChannelConfig c;
    c.kind = ChannelKind::GyroFull;
    c.rate_dps = 20.0 + 10.0 * i;
    c.with_faults = (i == 1);  // campaign on a subset of the fleet
    specs.push_back(c);
  }
  for (int i = 0; i < 2; ++i) {
    ChannelConfig c;
    c.kind = ChannelKind::GyroIdeal;
    c.rate_dps = -15.0 + 30.0 * i;
    c.temp_c = 25.0 + 20.0 * i;
    specs.push_back(c);
  }
  specs.push_back({ChannelKind::Adxrs300, 1, 50.0, 35.0});
  specs.push_back({ChannelKind::Gyrostar, 1, 40.0, 25.0});
  return specs;
}

TEST(ChannelFarm, SeedsForkDeterministicallyFromRoot) {
  FarmConfig fc;
  fc.root_seed = 99;
  ChannelFarm a(mixed_fleet(), fc);
  ChannelFarm b(mixed_fleet(), fc);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.channel(i).config().seed, b.channel(i).config().seed);
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_NE(a.channel(i).config().seed, a.channel(j).config().seed);
  }
}

TEST(ChannelFarm, OutputBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion of the whole engine: same root seed, same
  // fleet → byte-identical per-channel streams for 1 vs T worker threads.
  // Two advance() calls make decimation-phase carry-over part of the check.
  auto run_with = [](unsigned threads) {
    FarmConfig fc;
    fc.root_seed = 7;
    fc.threads = threads;
    ChannelFarm farm(mixed_fleet(), fc);
    farm.advance(0.03);
    farm.advance(0.02);
    std::vector<std::pair<std::size_t, std::uint64_t>> sig;
    for (std::size_t i = 0; i < farm.size(); ++i)
      sig.emplace_back(farm.channel(i).outputs().size(), farm.channel(i).output_hash());
    return sig;
  };

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const auto solo = run_with(1);
  const auto pooled = run_with(hw);
  ASSERT_EQ(solo.size(), pooled.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(solo[i].first, pooled[i].first) << "channel " << i << " sample count";
    EXPECT_EQ(solo[i].second, pooled[i].second) << "channel " << i << " byte identity";
  }
  // Distinct channels must not produce identical streams (seeds decorrelate).
  EXPECT_NE(solo[0].second, solo[1].second);
}

TEST(ChannelFarm, ChannelsProduceAtTheirOwnDecimatedRates) {
  FarmConfig fc;
  fc.threads = 0;  // hardware concurrency
  std::vector<ChannelConfig> specs = {{ChannelKind::GyroIdeal, 1, 30.0, 25.0},
                                      {ChannelKind::Adxrs300, 1, 30.0, 25.0}};
  ChannelFarm farm(specs, fc);
  farm.advance(0.05);
  // Both decimate to 1.875 kHz from a 1.92 MHz base: ~93 samples in 50 ms.
  for (std::size_t i = 0; i < farm.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(farm.channel(i).outputs().size()), 0.05 * 1875.0, 2.0);
    EXPECT_EQ(farm.channel(i).ticks_advanced(), 96000);
  }
  EXPECT_EQ(farm.total_samples(),
            farm.channel(0).outputs().size() + farm.channel(1).outputs().size());
}

TEST(ChannelFarm, AdvanceAccumulatesLikeOneLongRun) {
  // One 40 ms advance vs four 10 ms advances — constant stimulus profiles
  // make the two bit-identical only if per-channel decimation phase persists
  // across advance() boundaries.
  std::vector<ChannelConfig> specs = {{ChannelKind::Adxrs300, 1, 25.0, 30.0}};
  FarmConfig fc;
  fc.root_seed = 5;
  ChannelFarm one(specs, fc);
  ChannelFarm four(specs, fc);
  one.advance(0.04);
  for (int k = 0; k < 4; ++k) four.advance(0.01);
  ASSERT_EQ(one.channel(0).outputs().size(), four.channel(0).outputs().size());
  EXPECT_EQ(one.channel(0).output_hash(), four.channel(0).output_hash());
}

// ---- exception containment --------------------------------------------------

/// A campaign whose inject Action throws — the canonical "channel crashes
/// mid-advance" stimulus (fires from inside the DSP sample loop, deep under
/// ConditioningChannel::advance).
ChannelConfig throwing_config(long inject_at) {
  ChannelConfig c;
  c.kind = ChannelKind::GyroIdeal;
  c.campaign_factory = [inject_at](core::GyroSystem&) {
    auto campaign = std::make_unique<safety::FaultCampaign>();
    campaign->add({"explode", safety::FaultLayer::Dsp, inject_at, -1, false, 0},
                  [] { throw std::runtime_error("campaign action exploded"); });
    return campaign;
  };
  return c;
}

TEST(ChannelFarm, ThrowingChannelIsContainedSiblingsBitIdentical) {
  // Middle channel throws mid-advance on a worker thread; the exception must
  // not unwind the pool, wedge the barrier, or perturb the siblings' streams.
  std::vector<ChannelConfig> specs = {{ChannelKind::GyroIdeal, 1, 20.0, 25.0},
                                      throwing_config(/*inject_at=*/100),
                                      {ChannelKind::Adxrs300, 1, 40.0, 30.0}};
  FarmConfig fc;
  fc.root_seed = 21;
  fc.threads = 3;
  ChannelFarm farm(specs, fc);
  farm.advance(0.05);

  EXPECT_TRUE(farm.channel_failed(1));
  EXPECT_NE(farm.channel_error(1).find("campaign action exploded"), std::string::npos);
  EXPECT_EQ(farm.failed_channels(), 1u);
  EXPECT_FALSE(farm.channel_failed(0));
  EXPECT_FALSE(farm.channel_failed(2));

  // Clean twin farm: same specs with the bomb defused. Seeds fork by index,
  // so healthy channels must be byte-identical.
  specs[1].campaign_factory = nullptr;
  ChannelFarm clean(specs, fc);
  clean.advance(0.05);
  EXPECT_EQ(farm.channel(0).output_hash(), clean.channel(0).output_hash());
  EXPECT_EQ(farm.channel(2).output_hash(), clean.channel(2).output_hash());
}

TEST(ChannelFarm, FailedChannelIsSkippedByLaterAdvances) {
  std::vector<ChannelConfig> specs = {throwing_config(/*inject_at=*/50),
                                      {ChannelKind::GyroIdeal, 1, 25.0, 25.0}};
  FarmConfig fc;
  fc.root_seed = 3;
  fc.threads = 2;
  ChannelFarm farm(specs, fc);
  farm.advance(0.03);
  ASSERT_TRUE(farm.channel_failed(0));
  const long poisoned_ticks = farm.channel(0).ticks_advanced();

  // Later advances keep the fleet moving and leave the wreck untouched.
  farm.advance(0.03);
  EXPECT_EQ(farm.channel(0).ticks_advanced(), poisoned_ticks);
  EXPECT_EQ(farm.channel(1).ticks_advanced(), 115200);  // 60 ms at 1.92 MHz
  EXPECT_TRUE(farm.channel_failed(0));
  EXPECT_EQ(farm.channel_error(0), "campaign action exploded");
}

TEST(ChannelFarm, ClearedFailureResumesAdvancing) {
  // clear_channel_failure is the supervisor's hook after repairing a channel
  // in place; the farm must advance it again. The bomb is one-shot: a throw
  // unwinds before FaultCampaign marks the entry injected, so a persistent
  // thrower would just re-fire on the next advance.
  auto fired = std::make_shared<std::atomic<int>>(0);
  ChannelConfig one_shot;
  one_shot.kind = ChannelKind::GyroIdeal;
  one_shot.campaign_factory = [fired](core::GyroSystem&) {
    auto campaign = std::make_unique<safety::FaultCampaign>();
    campaign->add({"explode_once", safety::FaultLayer::Dsp, 50, -1, false, 0}, [fired] {
      if (fired->fetch_add(1) == 0) throw std::runtime_error("campaign action exploded");
    });
    return campaign;
  };
  std::vector<ChannelConfig> specs = {one_shot};
  FarmConfig fc;
  fc.root_seed = 9;
  ChannelFarm farm(specs, fc);
  farm.advance(0.03);
  ASSERT_TRUE(farm.channel_failed(0));
  const long at_failure = farm.channel(0).ticks_advanced();

  farm.clear_channel_failure(0);
  EXPECT_FALSE(farm.channel_failed(0));
  EXPECT_EQ(farm.channel_error(0), "");
  farm.advance(0.01);
  EXPECT_GT(farm.channel(0).ticks_advanced(), at_failure);
}

TEST(ChannelFarm, ExceptionsAreCountedInSharedMetrics) {
  obs::MetricRegistry metrics;
  std::vector<ChannelConfig> specs = {throwing_config(/*inject_at=*/10),
                                      throwing_config(/*inject_at=*/10)};
  FarmConfig fc;
  fc.threads = 2;
  fc.shared_metrics = &metrics;
  ChannelFarm farm(specs, fc);
  farm.advance(0.02);
  EXPECT_EQ(farm.failed_channels(), 2u);
  EXPECT_EQ(metrics.snapshot().counter_value("farm.channel_exceptions"), 2.0);
}

TEST(ChannelFarm, FaultCampaignChannelDivergesFromCleanTwin) {
  // Same seed with and without the campaign: outputs must differ once the
  // register upset fires, proving the campaign actually runs inside the farm.
  ChannelConfig clean;
  clean.kind = ChannelKind::GyroFull;
  ChannelConfig faulted = clean;
  faulted.with_faults = true;
  FarmConfig fc;
  fc.root_seed = 11;
  // The farm forks seeds by index, so two single-channel farms with the same
  // root give the twins identical seeds.
  ChannelFarm f_clean({clean}, fc);
  ChannelFarm f_faulted({faulted}, fc);
  f_clean.advance(0.05);
  f_faulted.advance(0.05);
  ASSERT_EQ(f_clean.channel(0).config().seed, f_faulted.channel(0).config().seed);
  EXPECT_NE(f_clean.channel(0).output_hash(), f_faulted.channel(0).output_hash());
}

// ---- stimulus-source channels under the farm --------------------------------
// Also the TSan target for the seam: each channel owns its source, so
// QueueSource-fed and RecordedSource-fed channels must race-free bit-match
// across thread counts exactly like profile-fed ones (ci.sh replay stage
// runs this suite under ThreadSanitizer).

ChannelConfig queue_fed_config(int fill_ticks) {
  ChannelConfig cfg;
  cfg.kind = ChannelKind::GyroIdeal;
  cfg.stimulus_factory = [fill_ticks](double) {
    sensor::QueueSource::Config qc;
    qc.capacity = static_cast<std::size_t>(fill_ticks);
    auto q = std::make_unique<sensor::QueueSource>(qc);
    for (int i = 0; i < fill_ticks; ++i)
      q->push({30.0 + 0.01 * static_cast<double>(i % 100), 25.0});
    return q;
  };
  return cfg;
}

TEST(FarmStimulus, QueueFedChannelsBitIdenticalAcrossThreadCounts) {
  const double seconds = 0.02;
  std::vector<ChannelConfig> specs;
  for (int i = 0; i < 4; ++i) specs.push_back(queue_fed_config(20000 + 5000 * i));

  FarmConfig solo;
  solo.threads = 1;
  ChannelFarm f1(specs, solo);
  f1.advance(seconds);

  FarmConfig quad;
  quad.threads = 4;
  ChannelFarm f4(specs, quad);
  f4.advance(seconds);

  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1.channel(i).output_hash(), f4.channel(i).output_hash()) << i;
    EXPECT_EQ(f1.channel(i).stimulus()->underruns(), f4.channel(i).stimulus()->underruns()) << i;
  }
}

TEST(FarmStimulus, RecordedChannelsBitIdenticalAcrossThreadCounts) {
  // One shared immutable trace replayed by every channel — the sharing is
  // what TSan scrutinizes (sources hold shared_ptr<const StimulusTrace>).
  auto trace = std::make_shared<sensor::StimulusTrace>();
  trace->sample_rate_hz = 1.92e6;
  for (int i = 0; i < 50000; ++i)
    trace->samples.push_back({20.0 + 0.001 * static_cast<double>(i % 997), 25.0});

  ChannelConfig cfg;
  cfg.kind = ChannelKind::GyroIdeal;
  cfg.stimulus_factory = [trace](double base_rate_hz) {
    return std::make_unique<sensor::RecordedSource>(trace, base_rate_hz);
  };
  std::vector<ChannelConfig> specs(4, cfg);

  FarmConfig solo;
  solo.threads = 1;
  ChannelFarm f1(specs, solo);
  f1.advance(0.02);

  FarmConfig quad;
  quad.threads = 4;
  ChannelFarm f4(specs, quad);
  f4.advance(0.02);

  for (std::size_t i = 0; i < f1.size(); ++i)
    EXPECT_EQ(f1.channel(i).output_hash(), f4.channel(i).output_hash()) << i;
}

}  // namespace
}  // namespace ascp::engine
