// Checkpoint/restore proofs: resume-at-tick-k must be bit-exact with a
// straight-through run for every scenario in the conformance corpus — the
// corpus spans both fidelities, open/closed loop, fixed-point datapaths,
// register writes, fault campaigns and firmware-driven (ISS) runs, so it is
// the broadest state-coverage net the repo has. The corruption tests pin the
// CRC frame's failure taxonomy (truncation vs bit-rot vs wrong target).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "platform/engine/channel_farm.hpp"
#include "platform/engine/checkpoint.hpp"
#include "platform/engine/conditioning_channel.hpp"

namespace ascp::engine {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(ASCP_CORPUS_DIR))
    if (e.path().extension() == ".scenario") files.push_back(e.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

std::string test_name(const testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  std::replace_if(stem.begin(), stem.end(), [](char c) { return !std::isalnum(c); }, '_');
  return stem;
}

long scenario_ticks(const ChannelConfig& cfg, double seconds) {
  ConditioningChannel probe(cfg);
  return std::lround(seconds * probe.base_rate_hz());
}

class CorpusCheckpoint : public testing::TestWithParam<std::string> {};

// The core bit-exactness proof: run to 40%, snapshot, restore into a fresh
// channel built from the same config, finish — the resumed run's stream
// fingerprint must equal the straight-through run's.
TEST_P(CorpusCheckpoint, ResumeAtKBitExactWithStraightRun) {
  const auto scenario = conformance::load_scenario(GetParam());
  const ChannelConfig cfg = conformance::channel_config(scenario);
  const long total = scenario_ticks(cfg, scenario.duration_s);
  const long split = total * 2 / 5;

  ConditioningChannel straight(cfg);
  straight.advance(total);

  ConditioningChannel first(cfg);
  first.advance(split);
  const std::vector<std::uint8_t> image = first.snapshot();

  ConditioningChannel resumed(cfg);
  resumed.restore(image);
  ASSERT_EQ(resumed.ticks_advanced(), split);
  ASSERT_EQ(resumed.output_hash(), first.output_hash());
  resumed.advance(total - split);

  EXPECT_EQ(resumed.total_outputs(), straight.total_outputs());
  EXPECT_EQ(resumed.output_hash(), straight.output_hash());
}

// Snapshot must not perturb the donor: the snapshotted channel finishing its
// own run must also match the straight-through stream.
TEST_P(CorpusCheckpoint, SnapshotIsReadOnly) {
  const auto scenario = conformance::load_scenario(GetParam());
  const ChannelConfig cfg = conformance::channel_config(scenario);
  const long total = scenario_ticks(cfg, scenario.duration_s);
  const long split = total * 2 / 5;

  ConditioningChannel straight(cfg);
  straight.advance(total);

  ConditioningChannel snapshotted(cfg);
  snapshotted.advance(split);
  (void)snapshotted.snapshot();
  snapshotted.advance(total - split);

  EXPECT_EQ(snapshotted.output_hash(), straight.output_hash());
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusCheckpoint, testing::ValuesIn(corpus_files()),
                         test_name);

// Farm-level proof: every corpus scenario as one channel of a multi-threaded
// farm, snapshotted mid-run and resumed in a second farm — per-channel
// hashes must match a farm that ran straight through.
TEST(FarmCheckpoint, WholeCorpusFarmResumeBitExact) {
  std::vector<ChannelConfig> specs;
  double max_duration = 0.0;
  for (const auto& f : corpus_files()) {
    const auto scenario = conformance::load_scenario(f);
    specs.push_back(conformance::channel_config(scenario));
    max_duration = std::max(max_duration, scenario.duration_s);
  }
  ASSERT_FALSE(specs.empty());
  // Common simulated duration (channel_config scenarios tolerate running
  // longer than scripted: profiles hold their last value).
  const double total_s = max_duration;
  const double split_s = 0.4 * total_s;

  FarmConfig fc;
  fc.reseed_channels = false;  // corpus seeds are part of the scenarios
  fc.threads = 4;

  ChannelFarm straight(specs, fc);
  straight.advance(total_s);

  ChannelFarm first(specs, fc);
  first.advance(split_s);
  std::vector<std::vector<std::uint8_t>> images;
  images.reserve(first.size());
  for (std::size_t i = 0; i < first.size(); ++i) images.push_back(first.channel(i).snapshot());

  ChannelFarm resumed(specs, fc);
  for (std::size_t i = 0; i < resumed.size(); ++i) resumed.channel(i).restore(images[i]);
  resumed.advance(total_s - split_s);

  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed.channel(i).output_hash(), straight.channel(i).output_hash()) << i;
    EXPECT_EQ(resumed.channel(i).total_outputs(), straight.channel(i).total_outputs()) << i;
  }
}

// ---- corruption taxonomy ---------------------------------------------------

ChannelConfig cheap_config() {
  ChannelConfig cfg;
  cfg.kind = ChannelKind::Adxrs300;
  cfg.seed = 11;
  return cfg;
}

TEST(CheckpointFrame, TruncationDetected) {
  ConditioningChannel ch(cheap_config());
  ch.advance(20000);
  auto image = ch.snapshot();

  ConditioningChannel target(cheap_config());
  auto no_header = image;
  no_header.resize(kCheckpointHeaderSize - 4);
  EXPECT_THROW(target.restore(no_header), StateError);

  auto short_payload = image;
  short_payload.resize(image.size() - 7);
  EXPECT_THROW(target.restore(short_payload), StateError);
}

TEST(CheckpointFrame, BitRotDetectedByCrc) {
  ConditioningChannel ch(cheap_config());
  ch.advance(20000);
  auto image = ch.snapshot();
  image[kCheckpointHeaderSize + image.size() / 2] ^= 0x01;

  ConditioningChannel target(cheap_config());
  try {
    target.restore(image);
    FAIL() << "corrupted image restored";
  } catch (const StateError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(CheckpointFrame, WrongChannelKindRejected) {
  ConditioningChannel ch(cheap_config());
  ch.advance(20000);
  const auto image = ch.snapshot();

  ChannelConfig other = cheap_config();
  other.kind = ChannelKind::Gyrostar;
  ConditioningChannel target(other);
  EXPECT_THROW(target.restore(image), StateError);
}

TEST(CheckpointFrame, InspectReportsHeaderAndCrc) {
  ConditioningChannel ch(cheap_config());
  ch.advance(20000);
  auto image = ch.snapshot();

  CheckpointInfo info;
  ASSERT_TRUE(inspect_checkpoint(image, &info));
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.kind, static_cast<std::uint32_t>(ChannelKind::Adxrs300));
  EXPECT_EQ(info.payload_len, image.size() - kCheckpointHeaderSize);
  EXPECT_TRUE(info.crc_ok);

  image.back() ^= 0xFF;
  ASSERT_TRUE(inspect_checkpoint(image, &info));
  EXPECT_FALSE(info.crc_ok);

  std::vector<std::uint8_t> garbage(64, 0xAB);
  EXPECT_FALSE(inspect_checkpoint(garbage, &info));
}

}  // namespace
}  // namespace ascp::engine
