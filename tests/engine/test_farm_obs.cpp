// Farm-level observability: worker threads record into per-thread shards of
// one shared MetricRegistry, and the merged snapshot must be independent of
// the thread count (only commutative sums are shared). This file rides in
// the test_engine binary so the TSan CI stage races the shards for real.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "platform/engine/channel_farm.hpp"

namespace ascp::engine {
namespace {

std::vector<ChannelConfig> small_fleet() {
  std::vector<ChannelConfig> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].kind = ChannelKind::GyroIdeal;
    specs[i].rate_dps = 10.0 + 12.5 * static_cast<double>(i);
  }
  return specs;
}

obs::MetricsSnapshot run_with(unsigned threads) {
  obs::MetricRegistry metrics;
  FarmConfig fc;
  fc.root_seed = 7;
  fc.threads = threads;
  fc.shared_metrics = &metrics;
  ChannelFarm farm(small_fleet(), fc);
  farm.advance(0.03);
  farm.advance(0.02);
  return metrics.snapshot();
}

TEST(FarmObs, MergedSnapshotIndependentOfThreadCount) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const auto solo = run_with(1);
  const auto pooled = run_with(hw);

  // Counters: identical names and totals.
  ASSERT_EQ(solo.counters.size(), pooled.counters.size());
  ASSERT_FALSE(solo.counters.empty());
  for (std::size_t i = 0; i < solo.counters.size(); ++i) {
    EXPECT_EQ(solo.counters[i].first, pooled.counters[i].first);
    EXPECT_DOUBLE_EQ(solo.counters[i].second, pooled.counters[i].second)
        << solo.counters[i].first;
  }
  EXPECT_GT(solo.counter_value("farm.channel_advances"), 0.0);
  EXPECT_GT(solo.counter_value("farm.output_samples"), 0.0);

  // Histograms: same observation multiset → identical merged stats.
  ASSERT_EQ(solo.histograms.size(), pooled.histograms.size());
  for (std::size_t i = 0; i < solo.histograms.size(); ++i) {
    EXPECT_EQ(solo.histograms[i].first, pooled.histograms[i].first);
    const auto& a = solo.histograms[i].second;
    const auto& b = pooled.histograms[i].second;
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.sum, b.sum);
    EXPECT_DOUBLE_EQ(a.min, b.min);
    EXPECT_DOUBLE_EQ(a.max, b.max);
    EXPECT_DOUBLE_EQ(a.p50, b.p50);
    EXPECT_DOUBLE_EQ(a.p95, b.p95);
    EXPECT_DOUBLE_EQ(a.p99, b.p99);
  }
  const auto ticks = solo.histogram_stats("farm.advance_ticks");
  // 4 channels × 2 advance() calls = 8 per-channel advances observed.
  EXPECT_EQ(ticks.count, 8u);
}

TEST(FarmObs, MeteredFarmOutputMatchesUnmeteredFarm) {
  // The shared registry is pure observation: a metered farm and a plain farm
  // with the same seed must produce byte-identical streams.
  const auto signatures = [](obs::MetricRegistry* metrics) {
    FarmConfig fc;
    fc.root_seed = 11;
    fc.threads = 2;
    fc.shared_metrics = metrics;
    ChannelFarm farm(small_fleet(), fc);
    farm.advance(0.03);
    std::vector<std::uint64_t> sig;
    for (std::size_t i = 0; i < farm.size(); ++i) sig.push_back(farm.channel(i).output_hash());
    return sig;
  };
  obs::MetricRegistry metrics;
  EXPECT_EQ(signatures(nullptr), signatures(&metrics));
  EXPECT_GT(metrics.snapshot().counter_value("farm.channel_advances"), 0.0);
}

}  // namespace
}  // namespace ascp::engine
