// FleetSupervisor tests: the resilience loop end to end — exception
// containment + restart-from-checkpoint, stall detection, quarantine,
// corrupt-checkpoint demotion to cold rebuild, load shedding, and bounded
// result queues. The recurring invariant is *bit-exactness through
// recovery*: a channel that crashed, restarted and caught up must finish
// with the same output_hash() as a clean twin that never saw chaos.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/observability.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/dtc.hpp"

namespace ascp::engine {
namespace {

constexpr double kTickSeconds = 0.002;  // 3840 base ticks per fleet tick

ChannelConfig spec_config(ChannelKind kind) {
  ChannelConfig cfg;
  cfg.kind = kind;
  return cfg;
}

/// The clean twin: a solo channel with the fleet-derived seed for index i,
/// advanced the same total simulated time with no chaos anywhere near it.
/// fork() advances the parent Rng, so seeds must be derived sequentially —
/// exactly as FleetSupervisor's constructor does.
std::uint64_t clean_hash(ChannelKind kind, std::uint64_t root_seed, std::size_t i,
                         long fleet_ticks) {
  Rng root(root_seed);
  std::uint64_t seed = 0;
  for (std::size_t k = 0; k <= i; ++k) seed = root.fork(static_cast<std::uint64_t>(k) + 1).next_u64();
  ChannelConfig cfg = spec_config(kind);
  cfg.seed = seed;
  ConditioningChannel ch(cfg);
  ch.advance(std::llround(static_cast<double>(fleet_ticks) * kTickSeconds * ch.base_rate_hz()));
  return ch.output_hash();
}

FleetConfig base_cfg() {
  FleetConfig fc;
  fc.root_seed = 77;
  fc.threads = 3;
  fc.tick_seconds = kTickSeconds;
  fc.checkpoint_interval = 3;
  fc.max_restarts = 3;
  return fc;
}

const std::vector<ChannelKind> kFleetKinds = {ChannelKind::GyroIdeal, ChannelKind::Adxrs300,
                                              ChannelKind::Gyrostar, ChannelKind::Adxrs300};

std::vector<FleetChannelSpec> make_specs() {
  std::vector<FleetChannelSpec> specs;
  for (ChannelKind k : kFleetKinds) specs.push_back({spec_config(k), 0, nullptr});
  return specs;
}

TEST(Fleet, CleanRunMatchesSoloChannels) {
  const FleetConfig fc = base_cfg();
  FleetSupervisor fleet(make_specs(), fc);
  fleet.run_ticks(10);

  EXPECT_EQ(fleet.stats().exceptions, 0);
  EXPECT_EQ(fleet.stats().quarantined, 0);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.health(i), ChannelHealth::Running) << i;
    EXPECT_EQ(fleet.ticks_done(i), 10) << i;
    EXPECT_EQ(fleet.channel(i).output_hash(), clean_hash(kFleetKinds[i], fc.root_seed, i, 10))
        << i;
  }
  // Checkpoints were taken on the configured cadence.
  EXPECT_GT(fleet.stats().checkpoints, 0);
}

TEST(Fleet, ExceptionRestartsFromCheckpointBitExact) {
  auto specs = make_specs();
  std::atomic<int> crashes{0};
  specs[1].before_advance = [&crashes](long tick) {
    if (tick == 7 && crashes.fetch_add(1) == 0) throw std::runtime_error("injected crash");
  };

  const FleetConfig fc = base_cfg();
  obs::Observability obs;
  FleetConfig with_obs = fc;
  with_obs.metrics = &obs.metrics;
  with_obs.events = &obs.events;
  FleetSupervisor fleet(std::move(specs), with_obs);
  fleet.run_ticks(12);

  EXPECT_EQ(fleet.stats().exceptions, 1);
  EXPECT_EQ(fleet.stats().restarts, 1);
  EXPECT_EQ(fleet.restarts(1), 1);
  EXPECT_NE(fleet.fleet_dtcs(1) & safety::kDtcEngineFault, 0);
  EXPECT_EQ(fleet.health(1), ChannelHealth::Running);
  EXPECT_EQ(fleet.ticks_done(1), 12);
  ASSERT_EQ(fleet.stats().mttr_ms.size(), 1u);
  EXPECT_GT(fleet.stats().mttr_ms[0], 0.0);

  // The recovered channel and every sibling finish bit-identical to clean twins.
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet.channel(i).output_hash(), clean_hash(kFleetKinds[i], fc.root_seed, i, 12))
        << i;

  // Structured Engine events tell the story.
  EXPECT_GT(obs.events.count(obs::EventCategory::Engine), 0u);
}

TEST(Fleet, PersistentCrasherIsQuarantinedSiblingsUnaffected) {
  auto specs = make_specs();
  specs[2].before_advance = [](long) { throw std::runtime_error("always crashes"); };

  const FleetConfig fc = base_cfg();
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(20);

  EXPECT_EQ(fleet.health(2), ChannelHealth::Quarantined);
  EXPECT_EQ(fleet.stats().quarantined, 1);
  EXPECT_GT(fleet.restarts(2), fc.max_restarts);
  EXPECT_NE(fleet.fleet_dtcs(2) & safety::kDtcEngineFault, 0);
  EXPECT_FALSE(fleet.last_error(2).empty());

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(fleet.health(i), ChannelHealth::Running) << i;
    EXPECT_EQ(fleet.ticks_done(i), 20) << i;
    EXPECT_EQ(fleet.channel(i).output_hash(), clean_hash(kFleetKinds[i], fc.root_seed, i, 20))
        << i;
  }
}

TEST(Fleet, CorruptCheckpointDetectedAndDemotedToColdRebuild) {
  auto specs = make_specs();
  std::atomic<int> crashes{0};
  specs[0].before_advance = [&crashes](long tick) {
    if (tick == 8 && crashes.fetch_add(1) == 0) throw std::runtime_error("crash after corrupt");
  };

  const FleetConfig fc = base_cfg();
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(7);  // checkpoints at ticks 3 and 6
  ASSERT_TRUE(fleet.has_checkpoint(0));
  fleet.corrupt_last_checkpoint(0);
  fleet.run_ticks(5);  // crash at tick 8 → restore fails → cold rebuild + replay

  EXPECT_EQ(fleet.stats().corrupt_checkpoints, 1);
  EXPECT_EQ(fleet.restarts(0), 1);
  EXPECT_EQ(fleet.health(0), ChannelHealth::Running);
  EXPECT_EQ(fleet.ticks_done(0), 12);
  EXPECT_EQ(fleet.channel(0).output_hash(), clean_hash(kFleetKinds[0], fc.root_seed, 0, 12));
}

TEST(Fleet, TruncatedCheckpointAlsoDetected) {
  auto specs = make_specs();
  std::atomic<int> crashes{0};
  specs[3].before_advance = [&crashes](long tick) {
    if (tick == 8 && crashes.fetch_add(1) == 0) throw std::runtime_error("crash");
  };

  const FleetConfig fc = base_cfg();
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(7);
  ASSERT_TRUE(fleet.has_checkpoint(3));
  fleet.truncate_last_checkpoint(3, 40);
  fleet.run_ticks(5);

  EXPECT_EQ(fleet.stats().corrupt_checkpoints, 1);
  EXPECT_EQ(fleet.ticks_done(3), 12);
  EXPECT_EQ(fleet.channel(3).output_hash(), clean_hash(kFleetKinds[3], fc.root_seed, 3, 12));
}

TEST(Fleet, StallDetectedByWatchdogChannelStillCompletes) {
  auto specs = make_specs();
  std::atomic<int> stalls{0};
  specs[1].before_advance = [&stalls](long tick) {
    if (tick == 4 && stalls.fetch_add(1) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };

  FleetConfig fc = base_cfg();
  fc.tick_deadline_ms = 10.0;
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(8);

  EXPECT_GE(fleet.stats().stalls_detected, 1);
  ASSERT_FALSE(fleet.stats().stall_detect_ms.empty());
  EXPECT_GE(fleet.stats().stall_detect_ms[0], fc.tick_deadline_ms);
  EXPECT_NE(fleet.fleet_dtcs(1) & safety::kDtcEngineFault, 0);
  // A stall is detected, not destructive: the channel finished its ticks and
  // its stream is untouched.
  EXPECT_EQ(fleet.ticks_done(1), 8);
  EXPECT_EQ(fleet.channel(1).output_hash(), clean_hash(kFleetKinds[1], fc.root_seed, 1, 8));
}

TEST(Fleet, OverloadShedsLowPriorityThenCatchesUp) {
  auto specs = make_specs();
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].priority = i == 0 ? 1 : 0;  // channel 0 is the protected one

  FleetConfig fc = base_cfg();
  fc.realtime_budget_ms = 1e-6;  // every tick is over budget → constant shedding
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(6);

  EXPECT_GT(fleet.stats().shed_channel_ticks, 0);
  // Shedding postpones work, it never loses it: the final catch-up leaves
  // every channel at the same simulated instant with a clean-twin stream.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.ticks_done(i), 6) << i;
    EXPECT_EQ(fleet.channel(i).output_hash(), clean_hash(kFleetKinds[i], fc.root_seed, i, 6))
        << i;
  }
}

TEST(Fleet, BoundedQueuesCountDropsWithoutPerturbingTheStream) {
  std::vector<FleetChannelSpec> specs = make_specs();
  // One fleet tick of 2 ms produces three output samples per channel, so a
  // capacity of two forces each overflow policy to engage before the
  // supervisor's post-tick drain.
  specs[1].config.queue_capacity = 2;
  specs[1].config.queue_policy = QueuePolicy::DropOldest;
  specs[2].config.queue_capacity = 2;
  specs[2].config.queue_policy = QueuePolicy::Shed;

  FleetConfig fc = base_cfg();
  FleetSupervisor fleet(std::move(specs), fc);
  // One fat tick produces far more than 4 samples per channel before the
  // supervisor can drain, so the overflow policies engage.
  fleet.run_ticks(1);

  EXPECT_GT(fleet.channel(1).dropped_outputs(), 0u);
  EXPECT_GT(fleet.channel(2).dropped_outputs(), 0u);
  EXPECT_EQ(fleet.channel(0).dropped_outputs(), 0u);
  // The hash streams over *produced* samples, so degradation is invisible
  // to the determinism fingerprint.
  for (std::size_t i = 0; i < fleet.size(); ++i)
    EXPECT_EQ(fleet.channel(i).output_hash(), clean_hash(kFleetKinds[i], fc.root_seed, i, 1))
        << i;
  EXPECT_EQ(fleet.stats().delivered_samples + static_cast<long>(fleet.channel(1).dropped_outputs() +
                                                                fleet.channel(2).dropped_outputs()),
            static_cast<long>(fleet.channel(0).total_outputs() + fleet.channel(1).total_outputs() +
                              fleet.channel(2).total_outputs() + fleet.channel(3).total_outputs()));
}

TEST(Fleet, BlockPolicyBackpressuresInsteadOfDropping) {
  std::vector<FleetChannelSpec> specs = make_specs();
  specs[0].config.queue_capacity = 2;
  specs[0].config.queue_policy = QueuePolicy::Block;

  FleetConfig fc = base_cfg();
  FleetSupervisor fleet(std::move(specs), fc);
  fleet.run_ticks(6);

  // The supervisor drains every tick, so the blocked channel still finishes
  // all its ticks without dropping a sample.
  EXPECT_EQ(fleet.channel(0).dropped_outputs(), 0u);
  EXPECT_EQ(fleet.ticks_done(0), 6);
  EXPECT_EQ(fleet.channel(0).output_hash(), clean_hash(kFleetKinds[0], fc.root_seed, 0, 6));
}

}  // namespace
}  // namespace ascp::engine
