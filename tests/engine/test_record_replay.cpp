// Record → replay proofs for the stimulus/probe seam, at whole-platform
// scope: a corpus scenario recorded through a StimulusRecorder probe and
// replayed through a RecordedSource must reproduce the decimated-output
// FNV-1a hash bit-exactly — solo, in a 4-thread farm, and across a
// mid-replay checkpoint. Probes themselves must be invisible to the output
// stream, and the checkpoint image must carry the stimulus summary at its
// documented fixed offsets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "platform/engine/channel_farm.hpp"
#include "platform/engine/checkpoint.hpp"
#include "platform/engine/conditioning_channel.hpp"
#include "sensor/stimulus_source.hpp"

namespace ascp::engine {
namespace {

conformance::Scenario corpus_scenario(const char* name) {
  return conformance::load_scenario(std::string(ASCP_CORPUS_DIR) + "/" + name);
}

long scenario_ticks(const ChannelConfig& cfg, double seconds) {
  ConditioningChannel probe(cfg);
  return std::lround(seconds * probe.base_rate_hz());
}

/// Record the scenario's synthetic stimulus at the base rate (the bit-exact
/// setting) and return trace + the probed run's output hash.
std::shared_ptr<sensor::StimulusTrace> record_stimulus(const conformance::Scenario& s,
                                                       std::uint64_t* probed_hash = nullptr) {
  auto cfg = conformance::channel_config(s);
  const double base_rate = ConditioningChannel(cfg).base_rate_hz();
  sensor::StimulusRecorder recorder(base_rate);
  cfg.probe = &recorder;
  ConditioningChannel ch(cfg);
  ch.advance(std::lround(s.duration_s * base_rate));
  if (probed_hash) *probed_hash = ch.output_hash();
  return std::make_shared<sensor::StimulusTrace>(recorder.take());
}

ChannelConfig replay_config(const conformance::Scenario& s,
                            std::shared_ptr<sensor::StimulusTrace> trace) {
  auto cfg = conformance::channel_config(s);
  cfg.stimulus_factory = [trace = std::move(trace)](double base_rate_hz) {
    return std::make_unique<sensor::RecordedSource>(trace, base_rate_hz);
  };
  return cfg;
}

// ---- the headline invariant ------------------------------------------------

TEST(RecordReplay, CorpusScenarioReplaysBitExactSolo) {
  const auto s = corpus_scenario("vibration_shock.scenario");
  const ChannelConfig cfg = conformance::channel_config(s);
  const long total = scenario_ticks(cfg, s.duration_s);

  ConditioningChannel synthetic(cfg);
  synthetic.advance(total);

  std::uint64_t probed_hash = 0;
  auto trace = record_stimulus(s, &probed_hash);
  // Probe neutrality: recording must not change the stream.
  ASSERT_EQ(probed_hash, synthetic.output_hash());
  ASSERT_EQ(trace->samples.size(), static_cast<std::size_t>(total));

  ConditioningChannel replayed(replay_config(s, trace));
  EXPECT_EQ(replayed.stimulus()->kind(), sensor::StimulusKind::Recorded);
  replayed.advance(total);
  EXPECT_EQ(replayed.output_hash(), synthetic.output_hash());
  EXPECT_EQ(replayed.total_outputs(), synthetic.total_outputs());
  EXPECT_EQ(replayed.stimulus()->underruns(), 0u);
}

TEST(RecordReplay, CorpusScenarioReplaysBitExactInFourThreadFarm) {
  const auto s = corpus_scenario("diff_ideal_sine.scenario");
  const ChannelConfig cfg = conformance::channel_config(s);
  const long total = scenario_ticks(cfg, s.duration_s);

  ConditioningChannel synthetic(cfg);
  synthetic.advance(total);
  auto trace = record_stimulus(s);

  // Four replay channels of the same recording, advanced by a 4-thread farm:
  // each must land on the solo synthetic hash.
  std::vector<ChannelConfig> specs(4, replay_config(s, trace));
  FarmConfig fc;
  fc.reseed_channels = false;
  fc.threads = 4;
  ChannelFarm farm(specs, fc);
  farm.advance(s.duration_s);
  for (std::size_t i = 0; i < farm.size(); ++i)
    EXPECT_EQ(farm.channel(i).output_hash(), synthetic.output_hash()) << i;
}

// ---- mid-replay checkpoints ------------------------------------------------

TEST(RecordReplay, MidReplayCheckpointResumesBitExact) {
  const auto s = corpus_scenario("open_loop_batched.scenario");
  auto trace = record_stimulus(s);
  const ChannelConfig cfg = replay_config(s, trace);
  const long total = scenario_ticks(cfg, s.duration_s);
  const long split = total * 2 / 5;

  ConditioningChannel straight(cfg);
  straight.advance(total);

  ConditioningChannel first(cfg);
  first.advance(split);
  const auto cursor_at_split = first.stimulus()->cursor();
  EXPECT_GT(cursor_at_split, 0);
  const auto image = first.snapshot();

  ConditioningChannel resumed(cfg);
  resumed.restore(image);
  EXPECT_EQ(resumed.stimulus()->cursor(), cursor_at_split);
  resumed.advance(total - split);
  EXPECT_EQ(resumed.output_hash(), straight.output_hash());
  EXPECT_EQ(resumed.total_outputs(), straight.total_outputs());
}

TEST(RecordReplay, CheckpointRefusesWrongStimulusKind) {
  const auto s = corpus_scenario("open_loop_batched.scenario");
  auto trace = record_stimulus(s);
  ConditioningChannel recorded(replay_config(s, trace));
  recorded.advance(10000);
  const auto image = recorded.snapshot();

  // The same scenario with its synthetic stimulus is a different machine.
  ConditioningChannel synthetic(conformance::channel_config(s));
  EXPECT_THROW(synthetic.restore(image), StateError);
}

// ---- checkpoint image layout -----------------------------------------------

// checkpoint_tool reads the stimulus summary without linking the platform;
// this pins the contract: CHAN payload offset 20 = stimulus kind (u32 LE),
// 24 = cursor (i64 LE), i.e. image offsets 48/52 past the 28-byte header.
TEST(RecordReplay, StimulusSummarySitsAtFixedImageOffsets) {
  const auto s = corpus_scenario("open_loop_batched.scenario");
  auto trace = record_stimulus(s);
  ConditioningChannel ch(replay_config(s, trace));
  ch.advance(12345);
  const auto image = ch.snapshot();

  ASSERT_GE(image.size(), kCheckpointHeaderSize + 32);
  ASSERT_EQ(std::memcmp(image.data() + kCheckpointHeaderSize, "CHAN", 4), 0);
  std::uint32_t kind = 0;
  std::uint64_t cursor = 0;
  for (int i = 0; i < 4; ++i)
    kind |= static_cast<std::uint32_t>(image[kCheckpointHeaderSize + 20 + i]) << (8 * i);
  for (int i = 0; i < 8; ++i)
    cursor |= static_cast<std::uint64_t>(image[kCheckpointHeaderSize + 24 + i]) << (8 * i);
  EXPECT_EQ(kind, static_cast<std::uint32_t>(sensor::StimulusKind::Recorded));
  EXPECT_EQ(static_cast<std::int64_t>(cursor), ch.stimulus()->cursor());
}

// ---- probe neutrality across every tap -------------------------------------

/// Greedy probe: wants every tap, folds all frames into a running hash so
/// the work is observable but feeds nothing back.
class AllTapsProbe final : public sensor::Probe {
 public:
  void on_frame(const sensor::ProbeFrame& f) override {
    ++frames_;
    digest_ ^= static_cast<std::uint64_t>(f.tick) * 1099511628211ull +
               static_cast<std::uint64_t>(f.point);
  }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t frames_ = 0;
  std::uint64_t digest_ = 0;
};

TEST(ProbeNeutrality, AllTapsAttachedIsBitIdenticalToBareRun) {
  for (const char* name : {"vibration_shock.scenario", "open_loop_batched.scenario"}) {
    const auto s = corpus_scenario(name);
    const ChannelConfig bare_cfg = conformance::channel_config(s);
    const long total = scenario_ticks(bare_cfg, s.duration_s);

    ConditioningChannel bare(bare_cfg);
    bare.advance(total);

    AllTapsProbe probe;
    auto probed_cfg = conformance::channel_config(s);
    probed_cfg.probe = &probe;
    ConditioningChannel probed(probed_cfg);
    probed.advance(total);

    EXPECT_GT(probe.frames(), 0u) << name;
    EXPECT_EQ(probed.output_hash(), bare.output_hash()) << name;
    EXPECT_EQ(probed.total_outputs(), bare.total_outputs()) << name;
  }
}

// ---- flight recorder + span neutrality over the whole corpus ----------------

std::vector<std::string> all_corpus_files() {
  std::vector<std::string> files;
  for (const auto& e : std::filesystem::directory_iterator(ASCP_CORPUS_DIR))
    if (e.path().extension() == ".scenario") files.push_back(e.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

// PR 9's zero-perturbation proof at corpus breadth: every scenario, run with
// the flight recorder armed (which implies the full obs sink — events, spans,
// metrics, probe tee on the recorder ring), must hash identically to the bare
// run. The corpus spans both fidelities, open/closed loop, register writes,
// fault campaigns and ISS-driven runs, so this is the widest net available.
TEST(CorpusObsNeutrality, RecorderAndSpansArmedBitIdenticalSolo) {
  const auto files = all_corpus_files();
  ASSERT_GE(files.size(), 19u);
  for (const auto& f : files) {
    const auto s = conformance::load_scenario(f);
    const ChannelConfig bare_cfg = conformance::channel_config(s);
    const long total = scenario_ticks(bare_cfg, s.duration_s);

    ConditioningChannel bare(bare_cfg);
    bare.advance(total);

    auto armed_cfg = conformance::channel_config(s);
    armed_cfg.with_flight_recorder = true;
    ConditioningChannel armed(armed_cfg);
    armed.advance(total);

    ASSERT_NE(armed.flight_recorder(), nullptr) << f;
    EXPECT_GT(armed.flight_recorder()->total(), 0u) << f;  // ring actually fed
    EXPECT_EQ(armed.output_hash(), bare.output_hash()) << f;
    EXPECT_EQ(armed.total_outputs(), bare.total_outputs()) << f;
  }
}

// The same corpus as one 4-thread farm with every recorder armed: each
// channel must still land on its bare solo hash (no cross-channel or
// thread-count perturbation from the recording path).
TEST(CorpusObsNeutrality, RecorderArmedFourThreadFarmMatchesBareSoloHashes) {
  const auto files = all_corpus_files();
  std::vector<std::uint64_t> bare_hashes;
  std::vector<ChannelConfig> armed_specs;
  double max_duration = 0.0;
  for (const auto& f : files) {
    const auto s = conformance::load_scenario(f);
    max_duration = std::max(max_duration, s.duration_s);
    armed_specs.push_back(conformance::channel_config(s));
    armed_specs.back().with_flight_recorder = true;
  }
  ASSERT_FALSE(armed_specs.empty());
  // Common duration: profiles hold their last value past the scripted end.
  for (const auto& f : files) {
    const auto s = conformance::load_scenario(f);
    ConditioningChannel bare(conformance::channel_config(s));
    bare.advance(scenario_ticks(conformance::channel_config(s), max_duration));
    bare_hashes.push_back(bare.output_hash());
  }

  FarmConfig fc;
  fc.reseed_channels = false;  // corpus seeds are part of the scenarios
  fc.threads = 4;
  ChannelFarm farm(armed_specs, fc);
  farm.advance(max_duration);
  for (std::size_t i = 0; i < farm.size(); ++i) {
    EXPECT_EQ(farm.channel(i).output_hash(), bare_hashes[i]) << files[i];
    EXPECT_GT(farm.channel(i).flight_recorder()->total(), 0u) << files[i];
  }
}

// ---- queue-fed ingestion ----------------------------------------------------

TEST(QueueIngestion, UnderrunRaisesProbeEventAndHoldsLast) {
  ChannelConfig cfg;
  cfg.kind = ChannelKind::GyroIdeal;
  cfg.seed = 5;
  cfg.with_obs = true;
  cfg.stimulus_factory = [](double) {
    sensor::QueueSource::Config qc;
    qc.capacity = 1024;
    auto q = std::make_unique<sensor::QueueSource>(qc);
    for (int i = 0; i < 512; ++i) q->push({30.0, 25.0});
    return q;
  };
  ConditioningChannel ch(cfg);
  ch.advance(2048);  // 512 fed ticks, then 1536 underrun ticks
  auto* q = dynamic_cast<sensor::QueueSource*>(ch.stimulus());
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->underruns(), 1536u);

  bool saw_underrun_event = false;
  for (const auto& e : ch.observability()->events.events())
    if (e.category == obs::EventCategory::Probe &&
        std::string_view(e.name) == "stimulus_underrun")
      saw_underrun_event = true;
  EXPECT_TRUE(saw_underrun_event);
}

}  // namespace
}  // namespace ascp::engine
