// Property tests: the ISS ALU against a C++ oracle across operand sweeps —
// every combination of carry-in and a grid of operand pairs for ADD/ADDC/
// SUBB flag semantics, and a BCD sweep for DA A.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"

namespace ascp::mcu {
namespace {

struct AluResult {
  std::uint8_t a;
  bool cy, ac, ov;
};

/// Execute one ALU instruction on the ISS with given A, operand and carry.
AluResult run_iss(const std::string& mnemonic, std::uint8_t a, std::uint8_t b, bool carry_in) {
  Core8051 core;
  Assembler as;
  as.define("OPA", a);
  as.define("OPB", b);
  const std::string src = std::string(carry_in ? "SETB C\n" : "CLR C\n") +
                          "MOV A,#OPA\n" + mnemonic + " A,#OPB\n" + "done: SJMP done\n";
  core.load_program(as.assemble(src).image);
  while (!core.halted()) core.step();
  const std::uint8_t psw = core.psw();
  return AluResult{core.acc(), (psw & 0x80) != 0, (psw & 0x40) != 0, (psw & 0x04) != 0};
}

AluResult oracle_add(std::uint8_t a, std::uint8_t b, bool cin) {
  const int c = cin ? 1 : 0;
  AluResult r{};
  const int sum = a + b + c;
  r.a = static_cast<std::uint8_t>(sum);
  r.cy = sum > 0xFF;
  r.ac = (a & 0xF) + (b & 0xF) + c > 0xF;
  const int ss = static_cast<std::int8_t>(a) + static_cast<std::int8_t>(b) + c;
  r.ov = ss < -128 || ss > 127;
  return r;
}

AluResult oracle_subb(std::uint8_t a, std::uint8_t b, bool cin) {
  const int c = cin ? 1 : 0;
  AluResult r{};
  const int diff = a - b - c;
  r.a = static_cast<std::uint8_t>(diff & 0xFF);
  r.cy = diff < 0;
  r.ac = (a & 0xF) - (b & 0xF) - c < 0;
  const int sd = static_cast<std::int8_t>(a) - static_cast<std::int8_t>(b) - c;
  r.ov = sd < -128 || sd > 127;
  return r;
}

// Operand grid: boundary-rich values crossed with both carry states.
const std::uint8_t kGrid[] = {0x00, 0x01, 0x0F, 0x10, 0x7F, 0x80, 0x81, 0xF0, 0xFE, 0xFF, 0x55};

class AluSweep : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AluSweep, AddMatchesOracle) {
  const auto [ia, ib, cin] = GetParam();
  const std::uint8_t a = kGrid[ia], b = kGrid[ib];
  const auto iss = run_iss("ADD", a, b, cin);  // ADD ignores carry-in
  const auto ref = oracle_add(a, b, false);
  EXPECT_EQ(iss.a, ref.a);
  EXPECT_EQ(iss.cy, ref.cy);
  EXPECT_EQ(iss.ac, ref.ac);
  EXPECT_EQ(iss.ov, ref.ov);
}

TEST_P(AluSweep, AddcMatchesOracle) {
  const auto [ia, ib, cin] = GetParam();
  const std::uint8_t a = kGrid[ia], b = kGrid[ib];
  const auto iss = run_iss("ADDC", a, b, cin);
  const auto ref = oracle_add(a, b, cin);
  EXPECT_EQ(iss.a, ref.a);
  EXPECT_EQ(iss.cy, ref.cy);
  EXPECT_EQ(iss.ac, ref.ac);
  EXPECT_EQ(iss.ov, ref.ov);
}

TEST_P(AluSweep, SubbMatchesOracle) {
  const auto [ia, ib, cin] = GetParam();
  const std::uint8_t a = kGrid[ia], b = kGrid[ib];
  const auto iss = run_iss("SUBB", a, b, cin);
  const auto ref = oracle_subb(a, b, cin);
  EXPECT_EQ(iss.a, ref.a);
  EXPECT_EQ(iss.cy, ref.cy);
  EXPECT_EQ(iss.ac, ref.ac);
  EXPECT_EQ(iss.ov, ref.ov);
}

INSTANTIATE_TEST_SUITE_P(Grid, AluSweep,
                         ::testing::Combine(::testing::Range(0, 11), ::testing::Range(0, 11),
                                            ::testing::Bool()));

TEST(AluDa, BcdAdditionSweep) {
  // For all BCD pairs (0..99 sampled), ADD then DA A yields the BCD sum.
  for (int x = 0; x < 100; x += 7) {
    for (int y = 0; y < 100; y += 9) {
      const std::uint8_t a = static_cast<std::uint8_t>((x / 10) << 4 | (x % 10));
      const std::uint8_t b = static_cast<std::uint8_t>((y / 10) << 4 | (y % 10));
      Core8051 core;
      Assembler as;
      as.define("OPA", a);
      as.define("OPB", b);
      core.load_program(as.assemble(
          "CLR C\nMOV A,#OPA\nADD A,#OPB\nDA A\ndone: SJMP done\n").image);
      while (!core.halted()) core.step();
      const int sum = x + y;
      const std::uint8_t expect =
          static_cast<std::uint8_t>(((sum / 10) % 10) << 4 | (sum % 10));
      EXPECT_EQ(core.acc(), expect) << x << "+" << y;
      EXPECT_EQ(core.carry(), sum > 99) << x << "+" << y;
    }
  }
}

TEST(AluMulDiv, ExhaustiveSampledSweep) {
  for (int a = 0; a < 256; a += 23) {
    for (int b = 0; b < 256; b += 31) {
      Core8051 core;
      Assembler as;
      as.define("OPA", static_cast<std::uint16_t>(a));
      as.define("OPB", static_cast<std::uint16_t>(b));
      core.load_program(as.assemble(
          "MOV A,#OPA\nMOV B,#OPB\nMUL AB\nMOV 30h,A\nMOV 31h,B\n"
          "MOV A,#OPA\nMOV B,#OPB\nDIV AB\nMOV 32h,A\nMOV 33h,B\ndone: SJMP done\n").image);
      while (!core.halted()) core.step();
      const unsigned prod = static_cast<unsigned>(a) * static_cast<unsigned>(b);
      EXPECT_EQ(core.iram(0x30), prod & 0xFF) << a << "*" << b;
      EXPECT_EQ(core.iram(0x31), prod >> 8) << a << "*" << b;
      if (b != 0) {
        EXPECT_EQ(core.iram(0x32), a / b) << a << "/" << b;
        EXPECT_EQ(core.iram(0x33), a % b) << a << "/" << b;
      }
    }
  }
}

}  // namespace
}  // namespace ascp::mcu
