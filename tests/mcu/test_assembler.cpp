#include <gtest/gtest.h>

#include "mcu/assembler.hpp"

namespace ascp::mcu {
namespace {

std::vector<std::uint8_t> bytes(const std::string& src) {
  Assembler as;
  return as.assemble(src).image;
}

TEST(Assembler, EncodesBasicMoves) {
  EXPECT_EQ(bytes("MOV A,#55h"), (std::vector<std::uint8_t>{0x74, 0x55}));
  EXPECT_EQ(bytes("MOV R3,#7"), (std::vector<std::uint8_t>{0x7B, 0x07}));
  EXPECT_EQ(bytes("MOV A,R5"), (std::vector<std::uint8_t>{0xED}));
  EXPECT_EQ(bytes("MOV A,@R1"), (std::vector<std::uint8_t>{0xE7}));
  EXPECT_EQ(bytes("MOV 40h,A"), (std::vector<std::uint8_t>{0xF5, 0x40}));
}

TEST(Assembler, MovDirectDirectSourceFirst) {
  EXPECT_EQ(bytes("MOV 31h,30h"), (std::vector<std::uint8_t>{0x85, 0x30, 0x31}));
}

TEST(Assembler, MovDptrImmediate16) {
  EXPECT_EQ(bytes("MOV DPTR,#1234h"), (std::vector<std::uint8_t>{0x90, 0x12, 0x34}));
}

TEST(Assembler, SfrSymbolsResolve) {
  EXPECT_EQ(bytes("MOV ACC,#1"), (std::vector<std::uint8_t>{0x75, 0xE0, 0x01}));
  EXPECT_EQ(bytes("MOV A,P1"), (std::vector<std::uint8_t>{0xE5, 0x90}));
}

TEST(Assembler, BitSymbolsAndDottedBits) {
  EXPECT_EQ(bytes("SETB TR1"), (std::vector<std::uint8_t>{0xD2, 0x8E}));
  EXPECT_EQ(bytes("CLR RI"), (std::vector<std::uint8_t>{0xC2, 0x98}));
  EXPECT_EQ(bytes("SETB P1.3"), (std::vector<std::uint8_t>{0xD2, 0x93}));
  EXPECT_EQ(bytes("SETB 20h.5"), (std::vector<std::uint8_t>{0xD2, 0x05}));
  EXPECT_EQ(bytes("SETB ACC.7"), (std::vector<std::uint8_t>{0xD2, 0xE7}));
}

TEST(Assembler, NumericLiteralForms) {
  EXPECT_EQ(bytes("MOV A,#0x2A"), (std::vector<std::uint8_t>{0x74, 0x2A}));
  EXPECT_EQ(bytes("MOV A,#2Ah"), (std::vector<std::uint8_t>{0x74, 0x2A}));
  EXPECT_EQ(bytes("MOV A,#42"), (std::vector<std::uint8_t>{0x74, 42}));
  EXPECT_EQ(bytes("MOV A,#101b"), (std::vector<std::uint8_t>{0x74, 5}));
  EXPECT_EQ(bytes("MOV A,#'Z'"), (std::vector<std::uint8_t>{0x74, 'Z'}));
}

TEST(Assembler, ConstantExpressions) {
  EXPECT_EQ(bytes("MOV A,#10h+2"), (std::vector<std::uint8_t>{0x74, 0x12}));
  EXPECT_EQ(bytes("BASE EQU 40h \n MOV A,BASE+1"), (std::vector<std::uint8_t>{0xE5, 0x41}));
}

TEST(Assembler, LabelsAndBranches) {
  // SJMP back to start: offset -2 from the end of the 2-byte instruction.
  EXPECT_EQ(bytes("start: SJMP start"), (std::vector<std::uint8_t>{0x80, 0xFE}));
}

TEST(Assembler, ForwardReferencesResolve) {
  const auto img = bytes(R"(
    SJMP fwd
    NOP
fwd: NOP
  )");
  EXPECT_EQ(img[1], 0x01);  // skip one byte
}

TEST(Assembler, OrgPlacesCode) {
  Assembler as;
  const auto result = as.assemble(R"(
    ORG 10h
    NOP
  )");
  ASSERT_EQ(result.image.size(), 0x11u);
  EXPECT_EQ(result.entry, 0x10);
  EXPECT_EQ(result.image[0x10], 0x00);
}

TEST(Assembler, DbDwDs) {
  const auto img = bytes(R"(
    DB 1,2,0FFh,'A'
    DW 1234h
    DS 3
    DB 9
  )");
  EXPECT_EQ(img, (std::vector<std::uint8_t>{1, 2, 0xFF, 'A', 0x12, 0x34, 0, 0, 0, 9}));
}

TEST(Assembler, CommentsIgnored) {
  EXPECT_EQ(bytes("NOP ; trailing comment\n; full-line comment\nNOP"),
            (std::vector<std::uint8_t>{0x00, 0x00}));
}

TEST(Assembler, CharLiteralCasePreserved) {
  // Mnemonics and symbols fold to upper case; character literals must not.
  EXPECT_EQ(bytes("mov a,#'w'"), (std::vector<std::uint8_t>{0x74, 'w'}));
  EXPECT_EQ(bytes("MOV A,#'W'"), (std::vector<std::uint8_t>{0x74, 'W'}));
}

TEST(Assembler, CharLiteralSemicolonNotComment) {
  EXPECT_EQ(bytes("MOV A,#';'"), (std::vector<std::uint8_t>{0x74, ';'}));
}

TEST(Assembler, ArithmeticEncodings) {
  EXPECT_EQ(bytes("ADD A,R0"), (std::vector<std::uint8_t>{0x28}));
  EXPECT_EQ(bytes("ADDC A,#1"), (std::vector<std::uint8_t>{0x34, 0x01}));
  EXPECT_EQ(bytes("SUBB A,40h"), (std::vector<std::uint8_t>{0x95, 0x40}));
  EXPECT_EQ(bytes("INC @R0"), (std::vector<std::uint8_t>{0x06}));
  EXPECT_EQ(bytes("DEC R7"), (std::vector<std::uint8_t>{0x1F}));
  EXPECT_EQ(bytes("INC DPTR"), (std::vector<std::uint8_t>{0xA3}));
}

TEST(Assembler, LogicEncodings) {
  EXPECT_EQ(bytes("ORL 40h,#0Fh"), (std::vector<std::uint8_t>{0x43, 0x40, 0x0F}));
  EXPECT_EQ(bytes("ANL 40h,A"), (std::vector<std::uint8_t>{0x52, 0x40}));
  EXPECT_EQ(bytes("XRL A,R2"), (std::vector<std::uint8_t>{0x6A}));
  EXPECT_EQ(bytes("ORL C,/20h.0"), (std::vector<std::uint8_t>{0xA0, 0x00}));
  EXPECT_EQ(bytes("ANL C,TF0"), (std::vector<std::uint8_t>{0x82, 0x8D}));
}

TEST(Assembler, MovxMovcEncodings) {
  EXPECT_EQ(bytes("MOVX A,@DPTR"), (std::vector<std::uint8_t>{0xE0}));
  EXPECT_EQ(bytes("MOVX @DPTR,A"), (std::vector<std::uint8_t>{0xF0}));
  EXPECT_EQ(bytes("MOVX A,@R0"), (std::vector<std::uint8_t>{0xE2}));
  EXPECT_EQ(bytes("MOVX @R1,A"), (std::vector<std::uint8_t>{0xF3}));
  EXPECT_EQ(bytes("MOVC A,@A+DPTR"), (std::vector<std::uint8_t>{0x93}));
  EXPECT_EQ(bytes("MOVC A,@A+PC"), (std::vector<std::uint8_t>{0x83}));
}

TEST(Assembler, CjneAndDjnzEncodings) {
  // CJNE A,#5,$+3 → rel 0 (branch to next instruction).
  const auto img = bytes("x: CJNE A,#5,x");
  EXPECT_EQ(img, (std::vector<std::uint8_t>{0xB4, 0x05, 0xFD}));
  EXPECT_EQ(bytes("y: DJNZ R2,y"), (std::vector<std::uint8_t>{0xDA, 0xFE}));
  EXPECT_EQ(bytes("z: DJNZ 30h,z"), (std::vector<std::uint8_t>{0xD5, 0x30, 0xFD}));
}

TEST(Assembler, LongAndAbsoluteJumps) {
  EXPECT_EQ(bytes("LJMP 1234h"), (std::vector<std::uint8_t>{0x02, 0x12, 0x34}));
  EXPECT_EQ(bytes("LCALL 0ABCDh"), (std::vector<std::uint8_t>{0x12, 0xAB, 0xCD}));
  // AJMP within page 0: opcode = (a10..a8)<<5 | 0x01.
  const auto img = bytes("ORG 100h \n AJMP 123h");
  EXPECT_EQ(img[0x100], 0x21);
  EXPECT_EQ(img[0x101], 0x23);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  Assembler as;
  try {
    as.assemble("NOP\nBOGUS A,B\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Assembler, UndefinedSymbolThrows) {
  Assembler as;
  EXPECT_THROW(as.assemble("MOV A,NOPE"), AsmError);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler as;
  EXPECT_THROW(as.assemble("x: NOP\nx: NOP"), AsmError);
}

TEST(Assembler, BranchOutOfRangeThrows) {
  Assembler as;
  EXPECT_THROW(as.assemble("SJMP far \n ORG 200h \n far: NOP"), AsmError);
}

TEST(Assembler, AjmpCrossPageThrows) {
  Assembler as;
  EXPECT_THROW(as.assemble("AJMP 0F00h"), AsmError);  // target in another 2K page
}

TEST(Assembler, ExternalDefinesVisible) {
  Assembler as;
  as.define("MYREG", 0x1234);
  const auto img = as.assemble("MOV DPTR,#MYREG").image;
  EXPECT_EQ(img, (std::vector<std::uint8_t>{0x90, 0x12, 0x34}));
}

TEST(Assembler, EquDefinesSymbol) {
  Assembler as;
  const auto result = as.assemble("LEDPORT EQU 90h \n MOV LEDPORT,#0FFh");
  EXPECT_EQ(result.image, (std::vector<std::uint8_t>{0x75, 0x90, 0xFF}));
}

TEST(Assembler, UndefinedLabelReportsLineAndSymbol) {
  Assembler as;
  try {
    as.assemble("NOP\nNOP\n        LJMP nowhere\n");
    FAIL() << "undefined label must throw";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'NOWHERE'"), std::string::npos);
  }
}

TEST(Assembler, ForwardReferenceToDefinedLabelStillWorks) {
  Assembler as;
  const auto r = as.assemble("LJMP later\nNOP\nlater: NOP\n");
  EXPECT_EQ(r.image[0], 0x02);  // LJMP resolved through pass 2
  EXPECT_EQ(r.symbols.at("LATER"), 4u);
}

TEST(Assembler, MalformedLiteralsAreDiagnosedNotTruncated) {
  // These all used to parse as their numeric prefix (std::stol stops at the
  // first bad character) or escape as raw std::invalid_argument.
  for (const char* src : {"MOV A,#12Q4", "MOV A,#0x", "MOV A,#0x12G",
                          "MOV A,#5XH", "MOV DPTR,#0FFZ0h"}) {
    Assembler as;
    try {
      as.assemble(src);
      FAIL() << src << " must be rejected";
    } catch (const AsmError& e) {
      EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos) << src;
      EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos) << src;
    }
  }
}

TEST(Assembler, MalformedBitIndexIsDiagnosed) {
  Assembler as;
  EXPECT_THROW(as.assemble("SETB ACC.X"), AsmError);
  EXPECT_THROW(as.assemble("SETB ACC.9"), AsmError);
  Assembler ok;
  EXPECT_EQ(ok.assemble("SETB ACC.7").image,
            (std::vector<std::uint8_t>{0xD2, 0xE7}));
}

TEST(Assembler, PushPopXchEncodings) {
  EXPECT_EQ(bytes("PUSH ACC"), (std::vector<std::uint8_t>{0xC0, 0xE0}));
  EXPECT_EQ(bytes("POP PSW"), (std::vector<std::uint8_t>{0xD0, 0xD0}));
  EXPECT_EQ(bytes("XCH A,R3"), (std::vector<std::uint8_t>{0xCB}));
  EXPECT_EQ(bytes("XCH A,40h"), (std::vector<std::uint8_t>{0xC5, 0x40}));
  EXPECT_EQ(bytes("XCHD A,@R1"), (std::vector<std::uint8_t>{0xD7}));
}

}  // namespace
}  // namespace ascp::mcu
