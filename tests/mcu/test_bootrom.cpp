// Boot-flow integration: boot ROM + UART download + EEPROM boot, end to end
// on the ISS — the paper's §4.2 software download/update story.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/bootrom.hpp"
#include "mcu/bus.hpp"
#include "mcu/core8051.hpp"
#include "mcu/spi.hpp"
#include "mcu/uart.hpp"

namespace ascp::mcu {
namespace {

/// Full prototype-version MCU: boot ROM, program RAM, SPI master + EEPROM,
/// UART host link.
struct PrototypeMcu {
  PrototypeMcu() : bus(4096) {
    bus.map(&spi, cfg.spi_base, 3, "spi");
    // Program RAM fills the upper half minus the peripheral page at 0xFF00.
    bus.map_program_ram(cfg.prog_base, 0x7F00, &core);
    spi.connect(&eeprom);
    core.set_xdata_bus(&bus);
    host.attach(core);
    core.load_program(BootRom::image(cfg));
  }

  /// Run the system, pumping the UART, until the core halts or the budget
  /// is exhausted.
  bool run(long max_cycles) {
    long used = 0;
    while (used < max_cycles) {
      used += core.step();
      host.pump(core);
      if (core.halted()) return true;
    }
    return core.halted();
  }

  BootRomConfig cfg;
  Core8051 core;
  BridgedBus bus;
  SpiMaster spi;
  SpiEeprom eeprom{8192};
  HostLink host;
};

/// A tiny application that writes a signature and parks.
std::vector<std::uint8_t> signature_app(std::uint16_t org) {
  Assembler as;
  return as.assemble(R"(
    ORG )" + std::to_string(org) + R"(
    MOV 60h,#0C3h
    MOV 61h,#5Ah
    done: SJMP done
  )").image;
}

/// Strip the leading zeros an ORG>0 image carries.
std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& image, std::uint16_t org) {
  return std::vector<std::uint8_t>(image.begin() + org, image.end());
}

TEST(BootRom, ImageFitsInOneKilobyte) {
  // Paper: "the boot placed in a small 1 Kb ROM".
  EXPECT_LE(BootRom::image().size(), 1024u);
}

TEST(BootRom, UartDownloadRunsProgram) {
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);
  mcu.host.send_download(app);
  ASSERT_TRUE(mcu.run(3000000));
  EXPECT_EQ(mcu.core.iram(0x60), 0xC3);
  EXPECT_EQ(mcu.core.iram(0x61), 0x5A);
  // Host saw the ACK.
  ASSERT_FALSE(mcu.host.received().empty());
  EXPECT_EQ(mcu.host.received().back(), BootRom::kAck);
}

TEST(BootRom, CorruptDownloadNaksAndRetries) {
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);
  // First download with a corrupted checksum, then a good one.
  std::vector<std::uint8_t> frame;
  frame.push_back(BootRom::kMagic);
  frame.push_back(static_cast<std::uint8_t>(app.size() >> 8));
  frame.push_back(static_cast<std::uint8_t>(app.size() & 0xFF));
  for (auto b : app) frame.push_back(b);
  frame.push_back(0xEE);  // wrong checksum
  mcu.host.send(frame);
  mcu.host.send_download(app);
  ASSERT_TRUE(mcu.run(6000000));
  EXPECT_EQ(mcu.core.iram(0x60), 0xC3);
  // NAK followed (eventually) by ACK.
  const auto& rx = mcu.host.received();
  ASSERT_GE(rx.size(), 2u);
  EXPECT_EQ(rx.front(), BootRom::kNak);
  EXPECT_EQ(rx.back(), BootRom::kAck);
}

TEST(BootRom, EepromBootRunsProgramWithoutHost) {
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);
  mcu.eeprom.program(0, BootRom::eeprom_image(app));
  ASSERT_TRUE(mcu.run(3000000));
  EXPECT_EQ(mcu.core.iram(0x60), 0xC3);
  EXPECT_EQ(mcu.core.iram(0x61), 0x5A);
}

TEST(BootRom, CorruptEepromFallsBackToUart) {
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);
  auto bad = BootRom::eeprom_image(app);
  bad.back() ^= 0xFF;  // break the checksum
  mcu.eeprom.program(0, bad);
  mcu.host.send_download(app);
  ASSERT_TRUE(mcu.run(6000000));
  EXPECT_EQ(mcu.core.iram(0x60), 0xC3);
  EXPECT_EQ(mcu.host.received().back(), BootRom::kAck);
}

TEST(BootRom, DownloadedCodeLandsInProgramRam) {
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);
  mcu.host.send_download(app);
  ASSERT_TRUE(mcu.run(3000000));
  // Program RAM (XDATA view) and code view agree.
  for (std::size_t i = 0; i < app.size(); ++i) {
    EXPECT_EQ(mcu.bus.read(static_cast<std::uint16_t>(mcu.cfg.prog_base + i)), app[i]) << i;
    EXPECT_EQ(mcu.core.code_byte(static_cast<std::uint16_t>(mcu.cfg.prog_base + i)), app[i]) << i;
  }
}

TEST(BootRom, RebootFromEepromAfterStore) {
  // The paper's full loop: download over UART, store into EEPROM via SPI,
  // then reset and boot straight from EEPROM. Host-side orchestration, with
  // the store done through the MCU-visible SPI master by the host program.
  PrototypeMcu mcu;
  const auto app = payload_of(signature_app(mcu.cfg.prog_base), mcu.cfg.prog_base);

  // Phase 1: UART download and run.
  mcu.host.send_download(app);
  ASSERT_TRUE(mcu.run(3000000));
  ASSERT_EQ(mcu.core.iram(0x60), 0xC3);

  // Phase 2: store to EEPROM (factory programming path).
  mcu.eeprom.program(0, BootRom::eeprom_image(app));

  // Phase 3: reset; no host connected this time.
  mcu.core.reset();
  mcu.core.load_program(BootRom::image(mcu.cfg));
  ASSERT_TRUE(mcu.run(3000000));
  EXPECT_EQ(mcu.core.iram(0x60), 0xC3);
}

}  // namespace
}  // namespace ascp::mcu
