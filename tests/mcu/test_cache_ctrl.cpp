// Cache-controller tests: hit/miss accounting, write-through semantics, and
// firmware-level access through the SFR bus.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/cache_ctrl.hpp"

namespace ascp::mcu {
namespace {

TEST(CacheCtrl, OwnsItsFiveSfrs) {
  CacheController cc;
  EXPECT_TRUE(cc.owns(0xA1));
  EXPECT_TRUE(cc.owns(0xA5));
  EXPECT_FALSE(cc.owns(0xA0));  // P2
  EXPECT_FALSE(cc.owns(0xA6));
}

TEST(CacheCtrl, ReadsLoadedData) {
  CacheController cc;
  cc.load(0x000010, {1, 2, 3, 4});
  cc.write(0xA1, 0);     // bank
  cc.write(0xA2, 0x00);  // addr hi
  cc.write(0xA3, 0x10);  // addr lo
  EXPECT_EQ(cc.read(0xA4), 1);
  EXPECT_EQ(cc.read(0xA4), 2);  // post-increment
  EXPECT_EQ(cc.read(0xA4), 3);
  EXPECT_EQ(cc.read(0xA4), 4);
}

TEST(CacheCtrl, FirstAccessMissesThenHits) {
  CacheController cc;
  cc.load(0, {9, 9, 9, 9});
  cc.write(0xA2, 0);
  cc.write(0xA3, 0);
  cc.read(0xA4);
  EXPECT_EQ(cc.misses(), 1);
  EXPECT_EQ(cc.hits(), 0);
  EXPECT_EQ(cc.read(0xA5), 1);  // CSTAT: last access missed
  // Next 15 bytes are in the same line: all hits.
  for (int i = 0; i < 15; ++i) cc.read(0xA4);
  EXPECT_EQ(cc.hits(), 15);
  EXPECT_EQ(cc.misses(), 1);
  EXPECT_EQ(cc.read(0xA5), 0);
}

TEST(CacheCtrl, ConflictingLinesEvict) {
  CacheController cc;  // 16 lines × 16 B = 256 B of cache
  // Two addresses 4 KB apart map to the same line (index = line_addr % 16).
  auto access = [&](std::uint32_t addr) {
    cc.write(0xA1, static_cast<std::uint8_t>(addr >> 16));
    cc.write(0xA2, static_cast<std::uint8_t>(addr >> 8));
    cc.write(0xA3, static_cast<std::uint8_t>(addr));
    return cc.read(0xA4);
  };
  access(0x0000);
  access(0x0100);  // same index, different tag: evicts
  cc.reset_stats();
  access(0x0000);  // must miss again
  EXPECT_EQ(cc.misses(), 1);
}

TEST(CacheCtrl, WriteThroughReachesExternal) {
  CacheController cc;
  cc.write(0xA2, 0x01);
  cc.write(0xA3, 0x00);
  cc.write(0xA4, 0x77);  // CDATA write
  EXPECT_EQ(cc.peek(0x0100), 0x77);
  // And a read through the (now cached) line sees the same value.
  cc.write(0xA2, 0x01);
  cc.write(0xA3, 0x00);
  EXPECT_EQ(cc.read(0xA4), 0x77);
}

TEST(CacheCtrl, LoadInvalidatesCachedLines) {
  CacheController cc;
  cc.load(0, {1});
  cc.write(0xA2, 0);
  cc.write(0xA3, 0);
  EXPECT_EQ(cc.read(0xA4), 1);
  cc.load(0, {2});  // host reprograms the external RAM
  cc.write(0xA2, 0);
  cc.write(0xA3, 0);
  EXPECT_EQ(cc.read(0xA4), 2);  // stale line must not survive
}

TEST(CacheCtrl, BankExtendsBeyond64K) {
  CacheController cc;  // 128 KB backing store
  cc.load(0x10000, {0xCD});
  cc.write(0xA1, 0x01);  // bank 1
  cc.write(0xA2, 0x00);
  cc.write(0xA3, 0x00);
  EXPECT_EQ(cc.read(0xA4), 0xCD);
}

TEST(CacheCtrl, PostIncrementCarriesAcrossBytes) {
  CacheController cc;
  cc.load(0x0000FF, {0x11, 0x22});
  cc.write(0xA1, 0);
  cc.write(0xA2, 0x00);
  cc.write(0xA3, 0xFF);
  EXPECT_EQ(cc.read(0xA4), 0x11);
  // Address rolled to 0x0100.
  EXPECT_EQ(cc.read(0xA2), 0x01);
  EXPECT_EQ(cc.read(0xA3), 0x00);
  EXPECT_EQ(cc.read(0xA4), 0x22);
}

TEST(CacheCtrl, StallCyclesTrackMisses) {
  CacheConfig cfg;
  cfg.miss_penalty_cycles = 34;
  CacheController cc(cfg);
  cc.write(0xA3, 0x00);
  cc.read(0xA4);
  cc.write(0xA3, 0x40);  // different line
  cc.read(0xA4);
  EXPECT_EQ(cc.stall_cycles(), 2 * 34);
}

TEST(CacheCtrl, FirmwareStreamsThroughCache) {
  // The paper's use case: the CPU fetches data from the big external RAM
  // through the cache window — here an 8051 program sums 16 bytes.
  Core8051 core;
  CacheController cc;
  core.attach_sfr_device(&cc);
  std::vector<std::uint8_t> table(16);
  for (int i = 0; i < 16; ++i) table[i] = static_cast<std::uint8_t>(i + 1);  // sum = 136
  cc.load(0x2000, table);

  Assembler as;
  as.define("CBANK", 0xA1);
  as.define("CAHI", 0xA2);
  as.define("CALO", 0xA3);
  as.define("CDATA", 0xA4);
  core.load_program(as.assemble(R"(
        MOV CBANK,#0
        MOV CAHI,#20h
        MOV CALO,#0
        MOV R2,#16
        CLR A
        MOV R3,#0
loop:   MOV R4,A
        MOV A,CDATA
        ADD A,R4
        DJNZ R2,loop
        MOV 30h,A
        done: SJMP done
  )").image);
  long used = 0;
  while (!core.halted() && used < 100000) used += core.step();
  EXPECT_EQ(core.iram(0x30), 136);
  EXPECT_EQ(cc.misses(), 1);   // one line fill
  EXPECT_EQ(cc.hits(), 15);
}

}  // namespace
}  // namespace ascp::mcu
