// ISA tests for the 8051 core. Programs are assembled from source so these
// tests exercise assembler and ISS together; targeted byte-level programs
// are used where encoding corner cases matter.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"

namespace ascp::mcu {
namespace {

/// Assemble, load, run until the firmware parks on `SJMP $` (or budget runs
/// out), return the core for inspection.
class CoreRunner {
 public:
  explicit CoreRunner(const std::string& source, long max_cycles = 100000) {
    Assembler as;
    const auto result = as.assemble(source);
    core.load_program(result.image);
    symbols = result.symbols;
    long used = 0;
    while (!core.halted() && used < max_cycles) used += core.step();
    EXPECT_TRUE(core.halted()) << "program did not reach its end marker";
  }

  Core8051 core;
  std::map<std::string, std::uint16_t> symbols;
};

TEST(Core8051, ResetState) {
  Core8051 core;
  EXPECT_EQ(core.pc(), 0);
  EXPECT_EQ(core.acc(), 0);
  EXPECT_EQ(core.read_sfr(sfr::SP), 0x07);
  EXPECT_EQ(core.read_sfr(sfr::P1), 0xFF);
}

TEST(Core8051, MovImmediateAndRegisters) {
  CoreRunner run(R"(
    MOV A,#3Ch
    MOV R0,#11h
    MOV R7,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.acc(), 0x3C);
  EXPECT_EQ(run.core.reg(0), 0x11);
  EXPECT_EQ(run.core.reg(7), 0x3C);
}

TEST(Core8051, MovDirectAndIndirect) {
  CoreRunner run(R"(
    MOV 30h,#55h
    MOV R0,#30h
    MOV A,@R0
    MOV 31h,A
    MOV R1,#32h
    MOV @R1,#77h
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x55);
  EXPECT_EQ(run.core.iram(0x31), 0x55);
  EXPECT_EQ(run.core.iram(0x32), 0x77);
}

TEST(Core8051, MovDirectToDirectUsesSourceFirstEncoding) {
  // MOV 31h,30h must copy 30h -> 31h (source byte first in the encoding).
  CoreRunner run(R"(
    MOV 30h,#0ABh
    MOV 31h,30h
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x31), 0xAB);
}

TEST(Core8051, AddSetsCarryAndOverflow) {
  CoreRunner run(R"(
    MOV A,#0F0h
    ADD A,#20h      ; 0xF0+0x20 = 0x110: CY=1
    MOV 30h,PSW
    MOV A,#70h
    ADD A,#70h      ; 0x70+0x70 = 0xE0: OV=1 (signed overflow), CY=0
    MOV 31h,PSW
    done: SJMP done
  )");
  EXPECT_TRUE(run.core.iram(0x30) & 0x80);   // CY
  EXPECT_FALSE(run.core.iram(0x31) & 0x80);  // no CY
  EXPECT_TRUE(run.core.iram(0x31) & 0x04);   // OV
}

TEST(Core8051, AddAuxCarryFromLowNibble) {
  CoreRunner run(R"(
    MOV A,#0Fh
    ADD A,#01h
    MOV 30h,PSW
    done: SJMP done
  )");
  EXPECT_TRUE(run.core.iram(0x30) & 0x40);  // AC
}

TEST(Core8051, AddcPropagatesCarry) {
  CoreRunner run(R"(
    MOV A,#0FFh
    ADD A,#1        ; CY=1, A=0
    MOV A,#10h
    ADDC A,#10h     ; 0x10+0x10+1 = 0x21
    done: SJMP done
  )");
  EXPECT_EQ(run.core.acc(), 0x21);
}

TEST(Core8051, SubbBorrowChain) {
  CoreRunner run(R"(
    CLR C
    MOV A,#05h
    SUBB A,#07h     ; 5-7 = 0xFE, CY=1
    MOV 30h,A
    MOV A,#10h
    SUBB A,#01h     ; 0x10-1-1(borrow) = 0x0E
    MOV 31h,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0xFE);
  EXPECT_EQ(run.core.iram(0x31), 0x0E);
}

TEST(Core8051, MulAb) {
  CoreRunner run(R"(
    MOV A,#12
    MOV B,#34
    MUL AB          ; 408 = 0x198
    MOV 30h,A
    MOV 31h,B
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x98);
  EXPECT_EQ(run.core.iram(0x31), 0x01);
}

TEST(Core8051, DivAb) {
  CoreRunner run(R"(
    MOV A,#251
    MOV B,#18
    DIV AB          ; 251/18 = 13 rem 17
    MOV 30h,A
    MOV 31h,B
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 13);
  EXPECT_EQ(run.core.iram(0x31), 17);
}

TEST(Core8051, DivByZeroSetsOv) {
  CoreRunner run(R"(
    MOV A,#5
    MOV B,#0
    DIV AB
    MOV 30h,PSW
    done: SJMP done
  )");
  EXPECT_TRUE(run.core.iram(0x30) & 0x04);
}

TEST(Core8051, IncDecWrapAround) {
  CoreRunner run(R"(
    MOV A,#0FFh
    INC A           ; wraps to 0
    MOV 30h,A
    MOV R2,#0
    DEC R2          ; wraps to 0xFF
    MOV A,R2
    MOV 31h,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x00);
  EXPECT_EQ(run.core.iram(0x31), 0xFF);
}

TEST(Core8051, IncDptr16Bit) {
  CoreRunner run(R"(
    MOV DPTR,#00FFh
    INC DPTR
    MOV 30h,DPH
    MOV 31h,DPL
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x01);
  EXPECT_EQ(run.core.iram(0x31), 0x00);
}

TEST(Core8051, LogicOps) {
  CoreRunner run(R"(
    MOV A,#0F0h
    ORL A,#0Fh
    MOV 30h,A       ; 0xFF
    MOV A,#0F0h
    ANL A,#33h
    MOV 31h,A       ; 0x30
    MOV A,#0FFh
    XRL A,#0F0h
    MOV 32h,A       ; 0x0F
    MOV A,#55h
    CPL A
    MOV 33h,A       ; 0xAA
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0xFF);
  EXPECT_EQ(run.core.iram(0x31), 0x30);
  EXPECT_EQ(run.core.iram(0x32), 0x0F);
  EXPECT_EQ(run.core.iram(0x33), 0xAA);
}

TEST(Core8051, LogicOnDirectDestination) {
  CoreRunner run(R"(
    MOV 40h,#0F0h
    ORL 40h,#0Ah
    MOV 41h,#0FFh
    MOV A,#0Fh
    ANL 41h,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x40), 0xFA);
  EXPECT_EQ(run.core.iram(0x41), 0x0F);
}

TEST(Core8051, RotatesThroughCarry) {
  CoreRunner run(R"(
    CLR C
    MOV A,#81h
    RRC A           ; A=0x40, CY=1
    MOV 30h,A
    MOV 31h,PSW
    MOV A,#81h
    SETB C
    RLC A           ; A=0x03, CY=1
    MOV 32h,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x40);
  EXPECT_TRUE(run.core.iram(0x31) & 0x80);
  EXPECT_EQ(run.core.iram(0x32), 0x03);
}

TEST(Core8051, RotatesWithoutCarry) {
  CoreRunner run(R"(
    MOV A,#81h
    RR A
    MOV 30h,A       ; 0xC0
    MOV A,#81h
    RL A
    MOV 31h,A       ; 0x03
    MOV A,#0ABh
    SWAP A
    MOV 32h,A       ; 0xBA
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0xC0);
  EXPECT_EQ(run.core.iram(0x31), 0x03);
  EXPECT_EQ(run.core.iram(0x32), 0xBA);
}

TEST(Core8051, DaAdjustsBcd) {
  CoreRunner run(R"(
    MOV A,#19h      ; BCD 19
    ADD A,#28h      ; BCD 28 -> binary 0x41
    DA A            ; BCD 47
    done: SJMP done
  )");
  EXPECT_EQ(run.core.acc(), 0x47);
}

TEST(Core8051, StackPushPop) {
  CoreRunner run(R"(
    MOV A,#77h
    PUSH ACC
    MOV A,#0
    POP 30h
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x77);
  EXPECT_EQ(run.core.read_sfr(sfr::SP), 0x07);  // balanced
}

TEST(Core8051, CallAndReturn) {
  CoreRunner run(R"(
    LCALL sub
    MOV 31h,#1
    done: SJMP done
sub:
    MOV 30h,#2
    RET
  )");
  EXPECT_EQ(run.core.iram(0x30), 2);
  EXPECT_EQ(run.core.iram(0x31), 1);
}

TEST(Core8051, AcallWithinPage) {
  CoreRunner run(R"(
    ACALL sub
    MOV 31h,#1
    done: SJMP done
sub:
    MOV 30h,#2
    RET
  )");
  EXPECT_EQ(run.core.iram(0x30), 2);
  EXPECT_EQ(run.core.iram(0x31), 1);
}

TEST(Core8051, ConditionalJumps) {
  CoreRunner run(R"(
    MOV A,#0
    JZ iszero
    MOV 30h,#0BAh   ; must be skipped
iszero:
    MOV 31h,#1
    MOV A,#5
    JNZ notzero
    MOV 32h,#0BAh   ; must be skipped
notzero:
    MOV 33h,#1
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0);
  EXPECT_EQ(run.core.iram(0x31), 1);
  EXPECT_EQ(run.core.iram(0x32), 0);
  EXPECT_EQ(run.core.iram(0x33), 1);
}

TEST(Core8051, CjneBranchesAndSetsCarry) {
  CoreRunner run(R"(
    MOV A,#5
    CJNE A,#9,ne
    MOV 30h,#0FFh
ne: MOV 31h,PSW     ; CY set because 5 < 9
    CJNE A,#5,done
    MOV 32h,#1      ; equal: fall through
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0);
  EXPECT_TRUE(run.core.iram(0x31) & 0x80);
  EXPECT_EQ(run.core.iram(0x32), 1);
}

TEST(Core8051, DjnzCountsLoops) {
  CoreRunner run(R"(
    MOV R2,#10
    MOV A,#0
loop:
    INC A
    DJNZ R2,loop
    done: SJMP done
  )");
  EXPECT_EQ(run.core.acc(), 10);
}

TEST(Core8051, DjnzDirect) {
  CoreRunner run(R"(
    MOV 40h,#3
    MOV A,#0
loop:
    ADD A,#5
    DJNZ 40h,loop
    done: SJMP done
  )");
  EXPECT_EQ(run.core.acc(), 15);
}

TEST(Core8051, BitOperations) {
  CoreRunner run(R"(
    SETB 20h.0
    SETB 20h.7
    CLR 20h.7
    CPL 20h.1
    MOV C,20h.0
    MOV 2Fh.0,C
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x20), 0x03);  // bits 0 and 1
  EXPECT_EQ(run.core.iram(0x2F) & 1, 1);
}

TEST(Core8051, BooleanCarryLogic) {
  CoreRunner run(R"(
    SETB 20h.0
    CLR 20h.1
    CLR C
    ORL C,20h.0     ; C = 1
    ANL C,20h.1     ; C = 0
    ORL C,/20h.1    ; C = 1 (complemented bit)
    MOV 2Fh.0,C
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x2F) & 1, 1);
}

TEST(Core8051, JbJnbJbc) {
  CoreRunner run(R"(
    SETB 20h.3
    JB 20h.3,took
    MOV 30h,#0FFh
took:
    JBC 20h.3,cleared   ; jumps and clears the bit
    MOV 31h,#0FFh
cleared:
    JNB 20h.3,ok        ; bit is now clear
    MOV 32h,#0FFh
ok: done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0);
  EXPECT_EQ(run.core.iram(0x31), 0);
  EXPECT_EQ(run.core.iram(0x32), 0);
}

TEST(Core8051, XchAndXchd) {
  CoreRunner run(R"(
    MOV A,#12h
    MOV 40h,#34h
    XCH A,40h
    MOV 30h,A       ; 0x34
    MOV R0,#41h
    MOV 41h,#0ABh
    MOV A,#0CDh
    XCHD A,@R0      ; A=0xCB, 41h=0xAD
    MOV 31h,A
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 0x34);
  EXPECT_EQ(run.core.iram(0x40), 0x12);
  EXPECT_EQ(run.core.iram(0x31), 0xCB);
  EXPECT_EQ(run.core.iram(0x41), 0xAD);
}

TEST(Core8051, MovcReadsCodeTable) {
  CoreRunner run(R"(
    MOV DPTR,#table
    MOV A,#2
    MOVC A,@A+DPTR
    done: SJMP done
table:
    DB 10h,20h,30h,40h
  )");
  EXPECT_EQ(run.core.acc(), 0x30);
}

TEST(Core8051, RegisterBankSwitching) {
  CoreRunner run(R"(
    MOV R0,#11h     ; bank 0 R0 (iram 0x00)
    SETB RS0        ; select bank 1
    MOV R0,#22h     ; bank 1 R0 (iram 0x08)
    CLR RS0
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x00), 0x11);
  EXPECT_EQ(run.core.iram(0x08), 0x22);
}

TEST(Core8051, ParityFlagTracksAccumulator) {
  CoreRunner run(R"(
    MOV A,#3        ; two ones -> even parity, P=0
    MOV 30h,PSW
    MOV A,#7        ; three ones -> P=1
    MOV 31h,PSW
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30) & 1, 0);
  EXPECT_EQ(run.core.iram(0x31) & 1, 1);
}

TEST(Core8051, JmpIndirectViaDptr) {
  CoreRunner run(R"(
    MOV DPTR,#targets
    MOV A,#0
    JMP @A+DPTR
targets:
    LJMP t0
t0: MOV 30h,#9
    done: SJMP done
  )");
  EXPECT_EQ(run.core.iram(0x30), 9);
}

TEST(Core8051, HaltDetectsSjmpSelf) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble("here: SJMP here").image);
  core.step();
  EXPECT_TRUE(core.halted());
}

TEST(Core8051, CycleCountingRoughly12ClockMachineCycles) {
  // MUL = 4 cycles, MOV A,#n = 1 cycle, SJMP = 2.
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
    MOV A,#3
    MOV B,#3
    MUL AB
    done: SJMP done
  )").image);
  core.step();  // MOV A (B is SFR write: MOV dir,#imm = 2)
  core.step();
  core.step();  // MUL
  EXPECT_EQ(core.cycle_count(), 1 + 2 + 4);
}

}  // namespace
}  // namespace ascp::mcu
