// Interrupt-system and on-chip peripheral (timer/serial) tests.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"
#include "mcu/uart.hpp"

namespace ascp::mcu {
namespace {

TEST(Interrupts, Timer0OverflowVectors) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh          ; timer-0 vector
        INC 30h
        RETI
main:   MOV TMOD,#01h    ; timer 0 mode 1 (16-bit)
        MOV TH0,#0FFh
        MOV TL0,#0F0h    ; overflow after ~16 cycles
        MOV IE,#82h      ; EA + ET0
        SETB TR0
wait:   SJMP wait
  )").image);
  core.run_cycles(400);
  EXPECT_GE(core.iram(0x30), 1);
}

TEST(Interrupts, Timer0AutoReloadFiresRepeatedly) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        INC 30h
        RETI
main:   MOV TMOD,#02h    ; timer 0 mode 2 (8-bit auto-reload)
        MOV TH0,#0CEh    ; reload 0xCE -> overflow every 50 cycles
        MOV TL0,#0CEh
        MOV IE,#82h
        SETB TR0
wait:   SJMP wait
  )").image);
  core.run_cycles(2000);
  EXPECT_GE(core.iram(0x30), 30);
}

TEST(Interrupts, DisabledWhenEaClear) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        INC 30h
        RETI
main:   MOV TMOD,#02h
        MOV TH0,#0CEh
        MOV TL0,#0CEh
        MOV IE,#02h      ; ET0 set but EA clear
        SETB TR0
wait:   SJMP wait
  )").image);
  core.run_cycles(2000);
  EXPECT_EQ(core.iram(0x30), 0);
}

TEST(Interrupts, ExternalEdgeTriggered) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 03h          ; INT0 vector
        INC 30h
        RETI
main:   SETB IT0         ; edge mode
        MOV IE,#81h      ; EA + EX0
wait:   SJMP wait
  )").image);
  core.run_cycles(50);
  EXPECT_EQ(core.iram(0x30), 0);
  core.set_int0(true);   // assert: edge detected
  core.run_cycles(50);
  EXPECT_EQ(core.iram(0x30), 1);
  core.run_cycles(200);  // still asserted: no second edge
  EXPECT_EQ(core.iram(0x30), 1);
  core.set_int0(false);
  core.run_cycles(20);
  core.set_int0(true);   // second edge
  core.run_cycles(50);
  EXPECT_EQ(core.iram(0x30), 2);
}

TEST(Interrupts, HighPriorityPreemptsLow) {
  // Timer0 ISR (low priority) spins until INT0 (high priority) preempts it
  // and sets the release flag — only possible with working nesting.
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 03h          ; INT0 (high priority)
        MOV 31h,#1
        RETI
        ORG 0Bh          ; timer 0 (low priority)
        MOV 30h,#1
spin:   MOV A,31h
        JZ spin          ; wait for the high-priority ISR
        MOV 32h,#1
        RETI
main:   SETB IT0
        MOV IP,#01h      ; INT0 high priority
        MOV TMOD,#02h
        MOV TH0,#0CEh
        MOV TL0,#0CEh
        MOV IE,#83h      ; EA + ET0 + EX0
        SETB TR0
wait:   SJMP wait
  )").image);
  core.run_cycles(200);           // enter the timer ISR and start spinning
  EXPECT_EQ(core.iram(0x30), 1);  // in timer ISR
  EXPECT_EQ(core.iram(0x32), 0);  // still spinning
  core.set_int0(true);
  core.run_cycles(300);
  EXPECT_EQ(core.iram(0x31), 1);  // high-priority ISR ran
  EXPECT_EQ(core.iram(0x32), 1);  // spin released
}

TEST(Interrupts, LowCannotPreemptLow) {
  // While inside the timer-0 ISR (low priority), a serial interrupt (same
  // priority) must wait for RETI. The timer ISR is one-shot (clears TR0) so
  // it cannot starve the serial source after returning.
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        CLR TR0          ; one-shot
        INC 30h          ; timer ISR entered
        MOV R2,#100
busy:   DJNZ R2,busy     ; ~200-cycle ISR body
        RETI
        ORG 23h
        INC 31h
        CLR RI
        RETI
main:   MOV SCON,#50h
        MOV TMOD,#02h
        MOV TH0,#0B0h
        MOV TL0,#0B0h
        MOV IE,#92h      ; EA + ES + ET0
        SETB TR0
wait:   SJMP wait
  )").image);
  // Step until the timer ISR has been entered.
  long guard = 0;
  while (core.iram(0x30) == 0 && guard++ < 10000) core.step();
  ASSERT_EQ(core.iram(0x30), 1);
  // Deliver a serial byte while the ISR body is still spinning.
  ASSERT_TRUE(core.inject_rx(0x42));
  core.run_cycles(20);
  EXPECT_EQ(core.iram(0x31), 0);  // not serviced inside the timer ISR
  core.run_cycles(2000);
  EXPECT_GE(core.iram(0x31), 1);  // serviced after RETI
}

TEST(Serial, TransmitSetsTiAndDeliversByte) {
  Core8051 core;
  HostLink host;
  host.attach(core);
  Assembler as;
  core.load_program(as.assemble(R"(
        MOV SCON,#40h    ; mode 1
        MOV TMOD,#20h
        MOV TH1,#0FFh    ; fastest baud (32 cycles/bit)
        SETB TR1
        MOV SBUF,#48h    ; 'H'
w1:     JNB TI,w1
        CLR TI
        MOV SBUF,#69h    ; 'i'
w2:     JNB TI,w2
        CLR TI
        done: SJMP done
  )").image);
  long used = 0;
  while (!core.halted() && used < 100000) used += core.step();
  EXPECT_EQ(host.received_text(), "Hi");
}

TEST(Serial, ReceiveTriggersInterrupt) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 23h
        JNB RI,notrx
        CLR RI
        MOV 30h,SBUF
notrx:  RETI
main:   MOV SCON,#50h
        MOV IE,#90h      ; EA + ES
wait:   SJMP wait
  )").image);
  core.run_cycles(50);
  ASSERT_TRUE(core.inject_rx(0x5A));
  core.run_cycles(100);
  EXPECT_EQ(core.iram(0x30), 0x5A);
}

TEST(Serial, RxRefusedUntilRiCleared) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble("MOV SCON,#50h \n done: SJMP done").image);
  while (!core.halted()) core.step();
  EXPECT_TRUE(core.inject_rx(0x01));
  EXPECT_FALSE(core.inject_rx(0x02));  // RI still set: refuse (overrun)
}

TEST(Serial, RxRefusedWithoutRen) {
  Core8051 core;
  EXPECT_FALSE(core.inject_rx(0x55));
}

TEST(PowerModes, IdleStopsExecutionUntilInterrupt) {
  // PCON.0 (IDL): the CPU stops fetching but timers keep counting; a timer
  // interrupt wakes it and execution continues after the idle instruction.
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        INC 30h
        RETI
main:   MOV TMOD,#01h
        MOV TH0,#0FCh    ; ~1000 cycles to overflow
        MOV TL0,#18h
        MOV IE,#82h
        SETB TR0
        ORL PCON,#1      ; enter idle
        MOV 31h,#1       ; executed only after wake-up
        done: SJMP done
  )").image);
  core.run_cycles(500);
  EXPECT_EQ(core.iram(0x31), 0);  // still idle: post-idle code not reached
  core.run_cycles(2000);
  EXPECT_EQ(core.iram(0x30), 1);  // ISR ran
  EXPECT_EQ(core.iram(0x31), 1);  // woke and continued
}

TEST(PowerModes, IdleWithoutInterruptsSleepsForever) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORL PCON,#1
        MOV 30h,#1
        done: SJMP done
  )").image);
  core.run_cycles(5000);
  EXPECT_EQ(core.iram(0x30), 0);
  EXPECT_FALSE(core.halted());
}

TEST(Interrupts, InterruptWakesHaltedCore) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        INC 30h
        RETI
main:   MOV TMOD,#02h
        MOV TH0,#00h
        MOV TL0,#00h
        MOV IE,#82h
        SETB TR0
        done: SJMP done   ; park; timer keeps running
  )").image);
  core.run_cycles(1000);
  EXPECT_GE(core.iram(0x30), 1);  // ISR executed out of the parked loop
}

}  // namespace
}  // namespace ascp::mcu
