// ISA corner cases: page-crossing control flow, stack behaviour, register
// bank aliasing, PC-relative code reads — the encodings that break naive
// 8051 implementations.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"

namespace ascp::mcu {
namespace {

Core8051 run(const std::string& src, long max_cycles = 100000) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(src).image);
  long used = 0;
  while (!core.halted() && used < max_cycles) used += core.step();
  EXPECT_TRUE(core.halted());
  return core;
}

TEST(IsaCorners, AjmpUsesPageOfNextInstruction) {
  // An AJMP placed so its *own* address is in page 0 but the following
  // instruction is in page 1 must jump within page 1.
  Core8051 core;
  Assembler as;
  // Place the AJMP at 0x7FE: instruction ends at 0x800 (page 1); target in
  // page 1 is legal even though the AJMP itself starts in page 0.
  const auto img = as.assemble(R"(
        ORG 0
        LJMP 7FEh
        ORG 7FEh
        AJMP target
        ORG 810h
target: MOV 30h,#7
        done: SJMP done
  )").image;
  core.load_program(img);
  long used = 0;
  while (!core.halted() && used < 1000) used += core.step();
  EXPECT_EQ(core.iram(0x30), 7);
}

TEST(IsaCorners, MovcPcRelativeReadsAfterInstruction) {
  // MOVC A,@A+PC uses the PC *after* the MOVC: A = 1 skips exactly the
  // 1-byte RET and reads the first table byte; A = 2 reads the second.
  auto first = run(R"(
        LCALL get
        MOV 30h,A
        done: SJMP done
get:    MOV A,#1
        MOVC A,@A+PC
        RET
        DB 0AAh,0BBh
  )");
  EXPECT_EQ(first.iram(0x30), 0xAA);
  auto second = run(R"(
        LCALL get
        MOV 30h,A
        done: SJMP done
get:    MOV A,#2
        MOVC A,@A+PC
        RET
        DB 0AAh,0BBh
  )");
  EXPECT_EQ(second.iram(0x30), 0xBB);
}

TEST(IsaCorners, StackGrowsUpAndAliasesIram) {
  // SP starts at 7: the first PUSH lands at iram[8] — which is bank 1 R0.
  auto core = run(R"(
        MOV A,#0EEh
        PUSH ACC
        done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x08), 0xEE);
  EXPECT_EQ(core.read_sfr(sfr::SP), 0x08);
}

TEST(IsaCorners, RegisterBanksAliasLowIram) {
  // Writing R3 in bank 2 is writing iram[0x13] — and vice versa.
  auto core = run(R"(
        MOV PSW,#10h     ; RS1=1 RS0=0: bank 2
        MOV R3,#5Ah
        MOV PSW,#0       ; back to bank 0
        MOV A,13h        ; direct access to bank-2 R3
        MOV 30h,A
        done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 0x5A);
}

TEST(IsaCorners, IndirectReachesUpper128) {
  // iram 0x80..0xFF is reachable only via @Ri — direct 0x80+ hits SFRs.
  auto core = run(R"(
        MOV R0,#0C5h
        MOV @R0,#77h     ; upper-RAM byte, NOT an SFR
        MOV A,@R0
        MOV 30h,A
        done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 0x77);
  EXPECT_EQ(core.iram(0xC5), 0x77);
}

TEST(IsaCorners, DirectAbove80hIsSfrNotIram) {
  // MOV 90h,#x writes P1 (the SFR), leaving iram[0x90] untouched.
  auto core = run(R"(
        MOV 90h,#33h
        done: SJMP done
  )");
  EXPECT_EQ(core.read_sfr(0x90), 0x33);
  EXPECT_EQ(core.iram(0x90), 0x00);
}

TEST(IsaCorners, CjneIndirectForm) {
  auto core = run(R"(
        MOV R0,#40h
        MOV 40h,#9
        CJNE @R0,#9,bad
        MOV 30h,#1
        done: SJMP done
bad:    MOV 30h,#2
        SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 1);
}

TEST(IsaCorners, JmpADptrComputedDispatch) {
  // Classic jump table: JMP @A+DPTR with A = 2·index into AJMPs.
  auto core = run(R"(
        MOV DPTR,#table
        MOV A,#2         ; entry 1 (2 bytes per AJMP)
        JMP @A+DPTR
table:  AJMP case0
        AJMP case1
case0:  MOV 30h,#10
        SJMP fin
case1:  MOV 30h,#20
fin:    done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 20);
}

TEST(IsaCorners, RetiBalancesNestedCalls) {
  // LCALL inside an ISR: RET/RETI pairing must restore the original flow.
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
        ORG 0
        LJMP main
        ORG 0Bh
        LCALL helper
        RETI
helper: INC 30h
        RET
main:   MOV TMOD,#02h
        MOV TH0,#00h
        MOV TL0,#00h
        MOV IE,#82h
        SETB TR0
        MOV 31h,#1
wait:   SJMP wait
  )").image);
  core.run_cycles(2000);
  EXPECT_GE(core.iram(0x30), 1);
  EXPECT_EQ(core.iram(0x31), 1);  // main path intact after ISRs
}

TEST(IsaCorners, XchWithSfr) {
  auto core = run(R"(
        MOV B,#0CDh
        MOV A,#12h
        XCH A,B
        MOV 30h,A
        MOV 31h,B
        done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 0xCD);
  EXPECT_EQ(core.iram(0x31), 0x12);
}

TEST(IsaCorners, DptrWrapsAt64K) {
  auto core = run(R"(
        MOV DPTR,#0FFFFh
        INC DPTR
        MOV 30h,DPH
        MOV 31h,DPL
        done: SJMP done
  )");
  EXPECT_EQ(core.iram(0x30), 0);
  EXPECT_EQ(core.iram(0x31), 0);
}

TEST(IsaCorners, MovxRiUsesP2Page) {
  Core8051 core;
  struct Probe : XdataBus {
    std::uint16_t last_addr = 0;
    std::uint8_t read(std::uint16_t addr) override {
      last_addr = addr;
      return 0x42;
    }
    void write(std::uint16_t addr, std::uint8_t) override { last_addr = addr; }
  } probe;
  core.set_xdata_bus(&probe);
  Assembler as;
  core.load_program(as.assemble(R"(
        MOV P2,#12h
        MOV R1,#34h
        MOVX A,@R1
        done: SJMP done
  )").image);
  while (!core.halted()) core.step();
  EXPECT_EQ(probe.last_addr, 0x1234);
  EXPECT_EQ(core.acc(), 0x42);
}

}  // namespace
}  // namespace ascp::mcu
