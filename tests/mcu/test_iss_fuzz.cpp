// ISS fuzz: randomized legal instruction sequences against architectural
// invariants, plus the assembler → disassembler → assembler round-trip.
// Sequence generation is seeded, so a failure reproduces from the test name
// and seed printed in the assertion message.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mcu/assembler.hpp"
#include "mcu/core8051.hpp"
#include "mcu/disassembler.hpp"
#include "mcu/monitor_rom.hpp"

namespace ascp::mcu {
namespace {

std::string hex8(std::uint8_t v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02X", v);
  return buf;
}

bool parity_of(std::uint8_t v) {
  bool p = false;
  for (int i = 0; i < 8; ++i) p ^= (v >> i) & 1;
  return p;
}

/// One random straight-line instruction (no branches, no MOVX/MOVC — those
/// need attached buses / code layout; covered by the dedicated ISA tests).
/// Direct operands stay in scratch iram (0x30..0x5F) so the generated code
/// never tramples SP, PSW or the register banks by accident.
std::string random_insn(Rng& rng) {
  auto scratch = [&] { return hex8(static_cast<std::uint8_t>(0x30 + rng.next_u64() % 0x30)); };
  auto imm = [&] { return "#" + hex8(static_cast<std::uint8_t>(rng.next_u64() & 0xFF)); };
  auto rn = [&] { return "R" + std::to_string(rng.next_u64() % 8); };
  const char* alu[] = {"ADD", "ADDC", "SUBB", "ORL", "ANL", "XRL"};
  switch (rng.next_u64() % 14) {
    case 0: return std::string(alu[rng.next_u64() % 6]) + " A, " + imm();
    case 1: return std::string(alu[rng.next_u64() % 6]) + " A, " + scratch();
    case 2: return std::string(alu[rng.next_u64() % 6]) + " A, " + rn();
    case 3: return "MOV A, " + imm();
    case 4: return "MOV " + rn() + ", " + imm();
    case 5: return "MOV " + scratch() + ", A";
    case 6: return "MOV A, " + scratch();
    case 7: return "INC " + (rng.next_u64() % 2 ? std::string("A") : rn());
    case 8: return "DEC " + (rng.next_u64() % 2 ? std::string("A") : rn());
    case 9: return rng.next_u64() % 2 ? "RL A" : "RR A";
    case 10: return rng.next_u64() % 2 ? "RLC A" : "RRC A";
    case 11: return rng.next_u64() % 2 ? "SWAP A" : "CPL A";
    case 12: return rng.next_u64() % 2 ? "CLR C" : "SETB C";
    case 13: return "XCH A, " + scratch();
  }
  return "NOP";
}

TEST(IssFuzz, ParityFlagTracksAccumulatorThroughRandomAluSequences) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x5151);
    std::string src = "ORG 0x0000\n";
    const int kInsns = 200;
    for (int i = 0; i < kInsns; ++i) src += random_insn(rng) + "\n";
    src += "done: SJMP done\n";

    Core8051 cpu;
    cpu.load_program(Assembler().assemble(src).image);
    for (int i = 0; i < kInsns && !cpu.halted(); ++i) {
      const int cycles = cpu.step();
      ASSERT_GE(cycles, 1) << "seed " << seed << " insn " << i;
      // PSW.0 is hardware-generated from ACC (recomputed on PSW reads).
      ASSERT_EQ(cpu.read_sfr(sfr::PSW) & 1, parity_of(cpu.acc()) ? 1 : 0)
          << "seed " << seed << " insn " << i << " acc=" << int(cpu.acc());
    }
  }
}

TEST(IssFuzz, StackBalancedPushPopSequencesRestoreSpAndData) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0xACE1);
    // Random nest depth of PUSH/POP around random ALU filler: SP must come
    // back to its starting value and the popped bytes must match.
    const int depth = 1 + static_cast<int>(rng.next_u64() % 8);
    std::string src = "ORG 0x0000\n";
    std::vector<std::uint8_t> vals;
    for (int i = 0; i < depth; ++i) {
      const auto v = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
      vals.push_back(v);
      src += "MOV A, #" + hex8(v) + "\nPUSH ACC\n";
      src += random_insn(rng) + "\n";
    }
    std::string check;
    for (int i = depth - 1; i >= 0; --i)
      check += "POP " + hex8(static_cast<std::uint8_t>(0x60 + i)) + "\n";
    src += check;
    src += "done: SJMP done\n";

    Core8051 cpu;
    cpu.load_program(Assembler().assemble(src).image);
    const std::uint8_t sp0 = cpu.read_sfr(sfr::SP);
    for (int guard = 0; guard < 4000 && !cpu.halted(); ++guard) cpu.step();
    ASSERT_TRUE(cpu.halted()) << "seed " << seed;
    EXPECT_EQ(cpu.read_sfr(sfr::SP), sp0) << "seed " << seed;
    for (int i = 0; i < depth; ++i)
      EXPECT_EQ(cpu.iram(static_cast<std::uint8_t>(0x60 + i)), vals[static_cast<std::size_t>(i)])
          << "seed " << seed << " slot " << i;
  }
}

TEST(IssFuzz, RandomProgramsRoundTripThroughDisassembler) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 0xD15A);
    std::string src = "ORG 0x0000\n";
    for (int i = 0; i < 120; ++i) src += random_insn(rng) + "\n";
    const auto image = Assembler().assemble(src).image;

    const std::string listing =
        disassemble_range(image, 0, static_cast<std::uint16_t>(image.size()));
    const auto again = Assembler().assemble(listing).image;
    ASSERT_EQ(again, image) << "seed " << seed << "\n" << listing;
  }
}

TEST(IssFuzz, MonitorRomRoundTripsThroughDisassembler) {
  // Real firmware exercises the branchy half of the table: LCALL/AJMP/SJMP,
  // CJNE/DJNZ/JB with live targets, MOVX traffic, DPTR setup.
  const auto image = MonitorRom::image();
  const std::string listing =
      disassemble_range(image, 0, static_cast<std::uint16_t>(image.size()));
  const auto again = Assembler().assemble(listing).image;
  ASSERT_EQ(again.size(), image.size());
  ASSERT_EQ(again, image);
}

TEST(IssFuzz, EveryDefinedOpcodeDecodesAndRoundTrips) {
  // Single-instruction images for all 256 opcodes with fixed operand bytes.
  // Relative branches use offset 0 so targets stay in range either way.
  for (int op = 0; op < 256; ++op) {
    std::vector<std::uint8_t> image = {static_cast<std::uint8_t>(op), 0x34, 0x00};
    // Bit operands must name a legal bit address (0x34 is fine: iram 0x26.4).
    const auto insn = disassemble_one(image, 0);
    ASSERT_GE(insn.size, 1);
    ASSERT_LE(insn.size, 3);
    image.resize(static_cast<std::size_t>(insn.size));
    const auto again =
        Assembler().assemble("ORG 0x0000\n" + insn.text + "\n").image;
    ASSERT_EQ(again, image) << "opcode " << hex8(static_cast<std::uint8_t>(op)) << " -> "
                            << insn.text;
  }
}

}  // namespace
}  // namespace ascp::mcu
