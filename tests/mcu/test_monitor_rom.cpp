// Monitor-ROM protocol: host-side driver against the firmware running on
// the ISS, with the full bridge fabric in the loop.
#include <gtest/gtest.h>

#include "mcu/bus.hpp"
#include "mcu/monitor_rom.hpp"
#include "mcu/timer16.hpp"

namespace ascp::mcu {
namespace {

struct MonitorRig {
  MonitorRig() : bus(4096) {
    bus.map(&timer, 0x9000, 4, "timer");
    core.set_xdata_bus(&bus);
    link.attach(core);
    core.load_program(MonitorRom::image());
    host = std::make_unique<MonitorHost>(core, link);
  }

  Core8051 core;
  BridgedBus bus;
  Timer16 timer;
  HostLink link;
  std::unique_ptr<MonitorHost> host;
};

TEST(MonitorRom, ImageIsCompact) {
  EXPECT_LE(MonitorRom::image().size(), 512u);  // fits any boot ROM corner
}

TEST(MonitorRom, PingPong) {
  MonitorRig rig;
  EXPECT_TRUE(rig.host->ping());
  EXPECT_TRUE(rig.host->ping());  // still alive for a second round
}

TEST(MonitorRom, ReadXdataRam) {
  MonitorRig rig;
  rig.bus.write(0x0123, 0xAB);
  const auto v = rig.host->read_byte(0x0123);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xAB);
}

TEST(MonitorRom, WriteXdataRam) {
  MonitorRig rig;
  ASSERT_TRUE(rig.host->write_byte(0x0200, 0x5C));
  EXPECT_EQ(rig.bus.read(0x0200), 0x5C);
}

TEST(MonitorRom, WordAccessThroughBridgePeripheral) {
  MonitorRig rig;
  ASSERT_TRUE(rig.host->write_word(0x9002, 0xBEEF));  // timer RELOAD register
  EXPECT_EQ(rig.timer.read_reg(1), 0xBEEF);
  const auto v = rig.host->read_word(0x9002);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xBEEF);
}

TEST(MonitorRom, CoherentWordReadOfChangingRegister) {
  // The bridge read latch makes the two-byte read coherent even though the
  // register may change between transactions: the value seen is one of the
  // values the register actually held, never a mix.
  MonitorRig rig;
  rig.timer.write_reg(1, 0x00FF);
  const auto v1 = rig.host->read_word(0x9002);
  rig.timer.write_reg(1, 0x0100);
  const auto v2 = rig.host->read_word(0x9002);
  ASSERT_TRUE(v1 && v2);
  EXPECT_EQ(*v1, 0x00FF);
  EXPECT_EQ(*v2, 0x0100);
}

TEST(MonitorRom, UnknownCommandAnswersQuestionMark) {
  MonitorRig rig;
  rig.link.send('Z');
  long used = 0;
  while (rig.link.received().empty() && used < 1000000) {
    used += rig.core.step();
    rig.link.pump(rig.core);
  }
  ASSERT_FALSE(rig.link.received().empty());
  EXPECT_EQ(rig.link.received().back(), '?');
}

TEST(MonitorRom, SurvivesManyTransactions) {
  MonitorRig rig;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rig.host->write_byte(static_cast<std::uint16_t>(0x100 + i),
                                     static_cast<std::uint8_t>(i * 3)));
  }
  for (int i = 0; i < 50; ++i) {
    const auto v = rig.host->read_byte(static_cast<std::uint16_t>(0x100 + i));
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, static_cast<std::uint8_t>(i * 3)) << i;
  }
}

TEST(MonitorRom, TimeoutReportsFailure) {
  // A dead MCU (no firmware) never answers: the host times out cleanly.
  Core8051 core;  // empty code memory: executes NOPs forever
  HostLink link;
  link.attach(core);
  MonitorHost host(core, link);
  host.set_timeout_cycles(20000);
  EXPECT_FALSE(host.ping());
}

}  // namespace
}  // namespace ascp::mcu
