// Bridge-bus peripherals: bus mapping, SPI + EEPROM, timer, watchdog, SRAM
// trace controller.
#include <gtest/gtest.h>

#include "mcu/bus.hpp"
#include "mcu/spi.hpp"
#include "mcu/sram_ctrl.hpp"
#include "mcu/timer16.hpp"
#include "mcu/watchdog.hpp"

namespace ascp::mcu {
namespace {

TEST(BridgedBus, RamReadWrite) {
  BridgedBus bus(256);
  bus.write(0x10, 0xAB);
  EXPECT_EQ(bus.read(0x10), 0xAB);
}

TEST(BridgedBus, OpenBusReadsFf) {
  BridgedBus bus(16);
  EXPECT_EQ(bus.read(0x4000), 0xFF);
}

TEST(BridgedBus, WordRegisterCommitsOnHighByte) {
  Timer16 timer;
  BridgedBus bus(16);
  bus.map(&timer, 0x1000, 4, "timer");
  // Writing only the low byte must not commit.
  bus.write(0x1000, 0x34);
  EXPECT_EQ(timer.read_reg(0), 0);
  bus.write(0x1001, 0x12);
  EXPECT_EQ(timer.read_reg(0), 0x1234);
}

TEST(BridgedBus, WordReadAssemblesBytes) {
  Timer16 timer;
  timer.write_reg(1, 0xBEEF);
  BridgedBus bus(16);
  bus.map(&timer, 0x1000, 4, "timer");
  EXPECT_EQ(bus.read_word(0x1002), 0xBEEF);
}

TEST(BridgedBus, OverlappingWindowsRejected) {
  Timer16 a, b;
  BridgedBus bus(16);
  bus.map(&a, 0x1000, 4, "a");
  EXPECT_THROW(bus.map(&b, 0x1006, 4, "b"), std::invalid_argument);
  EXPECT_NO_THROW(bus.map(&b, 0x1008, 4, "b"));
}

TEST(BridgedBus, WindowOverRamRejected) {
  Timer16 t;
  BridgedBus bus(4096);
  EXPECT_THROW(bus.map(&t, 0x100, 4, "t"), std::invalid_argument);
}

TEST(Timer16, CountsDownAndExpires) {
  Timer16 t;
  t.write_reg(0, 100);  // count
  t.write_reg(2, 1);    // run
  t.tick(99);
  EXPECT_FALSE(t.expired());
  t.tick(2);
  EXPECT_TRUE(t.expired());
}

TEST(Timer16, AutoReloadKeepsRunning) {
  Timer16 t;
  t.write_reg(0, 10);
  t.write_reg(1, 10);  // reload
  t.write_reg(2, 1);
  t.tick(50);
  EXPECT_TRUE(t.expired());
  EXPECT_EQ(t.read_reg(2), 1);  // still running
}

TEST(Timer16, OneShotStopsWithoutReload) {
  Timer16 t;
  t.write_reg(0, 5);
  t.write_reg(2, 1);
  t.tick(100);
  EXPECT_TRUE(t.expired());
  EXPECT_EQ(t.read_reg(2), 0);  // stopped
}

TEST(Timer16, ClearExpiredFlag) {
  Timer16 t;
  t.write_reg(0, 1);
  t.write_reg(2, 1);
  t.tick(5);
  ASSERT_TRUE(t.expired());
  t.write_reg(2, 2);  // clear-expired
  EXPECT_FALSE(t.expired());
}

TEST(Watchdog, BitesWhenNotKicked) {
  int bites = 0;
  Watchdog wd([&] { ++bites; });
  wd.write_reg(1, 1000);  // period
  wd.write_reg(2, 1);     // enable
  wd.tick(999);
  EXPECT_EQ(bites, 0);
  wd.tick(2);
  EXPECT_EQ(bites, 1);
  EXPECT_TRUE(wd.bitten());
}

TEST(Watchdog, KickRestartsCountdown) {
  int bites = 0;
  Watchdog wd([&] { ++bites; });
  wd.write_reg(1, 1000);
  wd.write_reg(2, 1);
  for (int i = 0; i < 10; ++i) {
    wd.tick(900);
    wd.write_reg(0, Watchdog::kKickWord);
  }
  EXPECT_EQ(bites, 0);
}

TEST(Watchdog, WrongKickWordIgnored) {
  int bites = 0;
  Watchdog wd([&] { ++bites; });
  wd.write_reg(1, 100);
  wd.write_reg(2, 1);
  wd.tick(90);
  wd.write_reg(0, 0x1234);  // not the magic word
  wd.tick(20);
  EXPECT_EQ(bites, 1);
}

TEST(Watchdog, DisabledDoesNotBite) {
  int bites = 0;
  Watchdog wd([&] { ++bites; });
  wd.write_reg(1, 10);
  wd.tick(1000);
  EXPECT_EQ(bites, 0);
}

TEST(Watchdog, StatusStickyAcrossKick) {
  // Restarted firmware must still be able to read *why* it rebooted: the
  // bite flag survives KICK writes and only a PERIOD rewrite clears it.
  Watchdog wd;
  wd.write_reg(1, 100);
  wd.write_reg(2, 1);
  wd.tick(101);
  ASSERT_TRUE(wd.bitten());
  ASSERT_EQ(wd.read_reg(3), 1);

  wd.write_reg(0, Watchdog::kKickWord);  // kick after the bite
  EXPECT_EQ(wd.read_reg(3), 1) << "bite flag must survive KICK";
  wd.write_reg(2, 1);  // re-enable without reconfiguring
  EXPECT_EQ(wd.read_reg(3), 1) << "bite flag must survive CTRL re-enable";

  wd.write_reg(1, 100);  // the deliberate reconfigure step
  EXPECT_EQ(wd.read_reg(3), 0);
  EXPECT_FALSE(wd.bitten());
}

TEST(Watchdog, CountdownFrozenWhileBitten) {
  int bites = 0;
  Watchdog wd([&] { ++bites; });
  wd.write_reg(1, 50);
  wd.write_reg(2, 1);
  wd.tick(51);
  ASSERT_EQ(bites, 1);
  // Even re-enabled, a bitten watchdog must not fire a second reset pulse
  // until the PERIOD rewrite acknowledges the first.
  wd.write_reg(2, 1);
  wd.tick(1000);
  EXPECT_EQ(bites, 1);

  wd.write_reg(1, 50);
  wd.write_reg(2, 1);
  wd.tick(51);
  EXPECT_EQ(bites, 2);  // armed again after the acknowledge
}

TEST(SpiMaster, TransferExchangesByte) {
  struct Loopback : SpiSlave {
    void select(bool) override {}
    std::uint8_t transfer(std::uint8_t mosi) override {
      return static_cast<std::uint8_t>(mosi ^ 0xFF);
    }
  } slave;
  SpiMaster spi;
  spi.connect(&slave);
  spi.write_reg(SpiMaster::kRegCtrl, 1);  // CS
  spi.write_reg(SpiMaster::kRegData, 0x5A);
  EXPECT_EQ(spi.read_reg(SpiMaster::kRegStatus), 1);
  EXPECT_EQ(spi.read_reg(SpiMaster::kRegData), 0xA5);
  EXPECT_EQ(spi.read_reg(SpiMaster::kRegStatus), 0);  // cleared by read
}

TEST(SpiMaster, NoSlaveReadsFf) {
  SpiMaster spi;
  spi.write_reg(SpiMaster::kRegCtrl, 1);
  spi.write_reg(SpiMaster::kRegData, 0x77);
  EXPECT_EQ(spi.read_reg(SpiMaster::kRegData), 0xFF);
}

TEST(SpiEeprom, ReadProgrammedData) {
  SpiEeprom ee(1024);
  ee.program(0x10, {1, 2, 3});
  ee.select(true);
  ee.transfer(0x03);  // READ
  ee.transfer(0x00);
  ee.transfer(0x10);
  EXPECT_EQ(ee.transfer(0xFF), 1);
  EXPECT_EQ(ee.transfer(0xFF), 2);
  EXPECT_EQ(ee.transfer(0xFF), 3);
  ee.select(false);
}

TEST(SpiEeprom, WriteRequiresWren) {
  SpiEeprom ee(1024);
  // WRITE without WREN: ignored.
  ee.select(true);
  ee.transfer(0x02);
  ee.transfer(0x00);
  ee.transfer(0x00);
  ee.transfer(0x42);
  ee.select(false);
  EXPECT_EQ(ee.peek(0), 0xFF);
  // WREN then WRITE: lands.
  ee.select(true);
  ee.transfer(0x06);
  ee.select(false);
  ee.select(true);
  ee.transfer(0x02);
  ee.transfer(0x00);
  ee.transfer(0x00);
  ee.transfer(0x42);
  ee.select(false);
  EXPECT_EQ(ee.peek(0), 0x42);
}

TEST(SpiEeprom, RdsrReportsWel) {
  SpiEeprom ee(256);
  ee.select(true);
  EXPECT_EQ(ee.transfer(0x05), 0x00);
  ee.select(false);
  ee.select(true);
  ee.transfer(0x06);  // WREN
  ee.select(false);
  ee.select(true);
  EXPECT_EQ(ee.transfer(0x05), 0x02);
  ee.select(false);
}

TEST(SramCtrl, CapturesOnlySelectedNode) {
  SramController sram;
  sram.write_reg(1, 3);     // NODE = 3
  sram.write_reg(0, 1 | 2); // reset + arm
  EXPECT_TRUE(sram.push(3, 100));
  EXPECT_FALSE(sram.push(5, 200));  // wrong node
  EXPECT_TRUE(sram.push(3, 101));
  EXPECT_EQ(sram.count(), 2u);
}

TEST(SramCtrl, DecimationKeepsEveryNth) {
  SramController sram;
  sram.write_reg(1, 0);
  sram.write_reg(2, 4);  // every 4th
  sram.write_reg(0, 3);
  for (int i = 0; i < 16; ++i) sram.push(0, static_cast<std::uint16_t>(i));
  EXPECT_EQ(sram.count(), 4u);
  const auto snap = sram.snapshot();
  EXPECT_EQ(snap[0], 0);
  EXPECT_EQ(snap[1], 4);
}

TEST(SramCtrl, ReadbackThroughDataRegister) {
  SramController sram;
  sram.write_reg(0, 3);
  sram.push(0, 0xAAAA);
  sram.push(0, 0xBBBB);
  sram.write_reg(4, 0);  // RDPTR = 0
  EXPECT_EQ(sram.read_reg(5), 0xAAAA);
  EXPECT_EQ(sram.read_reg(5), 0xBBBB);  // auto-increment
}

TEST(SramCtrl, DisarmsWhenFull) {
  SramController sram;
  sram.write_reg(0, 3);
  for (std::size_t i = 0; i <= SramController::kSamples; ++i)
    sram.push(0, static_cast<std::uint16_t>(i));
  EXPECT_TRUE(sram.full());
  EXPECT_FALSE(sram.armed());
  EXPECT_EQ(sram.count(), SramController::kSamples);
}

TEST(SramCtrl, NotArmedIgnoresPushes) {
  SramController sram;
  EXPECT_FALSE(sram.push(0, 1));
  EXPECT_EQ(sram.count(), 0u);
}

}  // namespace
}  // namespace ascp::mcu
