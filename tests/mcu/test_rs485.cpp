// RS485 multi-drop tests: 9-bit multiprocessor mode, SM2 address filtering,
// and a two-node bus where the master selects each node in turn.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "mcu/rs485.hpp"

namespace ascp::mcu {
namespace {

TEST(Serial9Bit, Rb8CapturesNinthBit) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble("MOV SCON,#0D0h \n done: SJMP done").image);  // mode 3, REN
  while (!core.halted()) core.step();
  ASSERT_TRUE(core.inject_rx9(0x42, true));
  EXPECT_TRUE(core.read_sfr(sfr::SCON) & 0x04);  // RB8
  core.write_sfr(sfr::SCON, core.read_sfr(sfr::SCON) & ~0x05);  // clear RI+RB8
  ASSERT_TRUE(core.inject_rx9(0x43, false));
  EXPECT_FALSE(core.read_sfr(sfr::SCON) & 0x04);
}

TEST(Serial9Bit, Sm2DropsDataFrames) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble("MOV SCON,#0F0h \n done: SJMP done").image);  // mode3+SM2+REN
  while (!core.halted()) core.step();
  EXPECT_TRUE(core.inject_rx9(0x11, false));             // consumed by the wire…
  EXPECT_FALSE(core.read_sfr(sfr::SCON) & 0x01);         // …but no RI
  EXPECT_TRUE(core.inject_rx9(0x22, true));              // address frame
  EXPECT_TRUE(core.read_sfr(sfr::SCON) & 0x01);          // wakes the node
}

TEST(Serial9Bit, Tb8TravelsWithTxByte) {
  Core8051 core;
  Assembler as;
  core.load_program(as.assemble(R"(
    MOV SCON,#0C8h   ; mode 3, TB8 set
    MOV TMOD,#20h
    MOV TH1,#0FFh
    SETB TR1
    MOV SBUF,#77h
w:  JNB TI,w
    CLR TI
    CLR SCON.3       ; TB8 = 0
    MOV SBUF,#78h
w2: JNB TI,w2
    done: SJMP done
  )").image);
  std::vector<std::pair<std::uint8_t, bool>> sent;
  core.set_on_tx([&](std::uint8_t b) { sent.push_back({b, core.last_tx_bit9()}); });
  long used = 0;
  while (!core.halted() && used < 100000) used += core.step();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0], (std::pair<std::uint8_t, bool>{0x77, true}));
  EXPECT_EQ(sent[1], (std::pair<std::uint8_t, bool>{0x78, false}));
}

/// Node firmware: mode 3 + SM2, wait for the own-address frame, then drop
/// SM2, take one data byte, echo it incremented (TB8=0) and re-arm SM2.
std::vector<std::uint8_t> node_firmware(std::uint8_t address) {
  Assembler as;
  as.define("MYADDR", address);
  return as.assemble(R"(
        MOV SCON,#0F0h       ; mode 3, SM2, REN
        MOV TMOD,#20h
        MOV TH1,#0FFh
        SETB TR1
wait:   JNB RI,wait
        MOV A,SBUF
        CLR RI
        CJNE A,#MYADDR,wait  ; not us: stay filtered
        CLR SCON.5           ; SM2 off: accept data frames
data:   JNB RI,data
        MOV A,SBUF
        CLR RI
        SETB SCON.5          ; re-arm filtering
        INC A
        CLR SCON.3           ; TB8 = 0 on replies
        MOV SBUF,A
txw:    JNB TI,txw
        CLR TI
        SJMP wait
  )").image;
}

struct TwoNodeBus {
  TwoNodeBus() {
    a.load_program(node_firmware(0x10));
    b.load_program(node_firmware(0x20));
    bus.attach(a);
    bus.attach(b);
  }

  void run(long cycles) {
    long used = 0;
    while (used < cycles) {
      used += a.step();
      b.step();
      bus.pump();
    }
  }

  Core8051 a, b;
  Rs485Bus bus;
};

TEST(Rs485, AddressedNodeAnswersOthersStaySilent) {
  TwoNodeBus rig;
  rig.run(5000);  // both nodes reach their wait loops
  rig.bus.send_address(0x10);
  rig.bus.send_data(0x41);
  rig.run(60000);
  ASSERT_EQ(rig.bus.master_log().size(), 1u);
  EXPECT_EQ(rig.bus.master_log()[0].node, 0u);
  EXPECT_EQ(rig.bus.master_log()[0].byte, 0x42);  // echoed incremented
}

TEST(Rs485, SecondNodeSelectable) {
  TwoNodeBus rig;
  rig.run(5000);
  rig.bus.send_address(0x20);
  rig.bus.send_data(0x07);
  rig.run(60000);
  ASSERT_EQ(rig.bus.master_log().size(), 1u);
  EXPECT_EQ(rig.bus.master_log()[0].node, 1u);
  EXPECT_EQ(rig.bus.master_log()[0].byte, 0x08);
}

TEST(Rs485, SequentialPollingOfBothNodes) {
  TwoNodeBus rig;
  rig.run(5000);
  rig.bus.send_address(0x10);
  rig.bus.send_data(0x01);
  rig.run(60000);
  rig.bus.send_address(0x20);
  rig.bus.send_data(0x02);
  rig.run(60000);
  ASSERT_EQ(rig.bus.master_log().size(), 2u);
  EXPECT_EQ(rig.bus.master_log()[0].node, 0u);
  EXPECT_EQ(rig.bus.master_log()[0].byte, 0x02);
  EXPECT_EQ(rig.bus.master_log()[1].node, 1u);
  EXPECT_EQ(rig.bus.master_log()[1].byte, 0x03);
}

TEST(Rs485, UnknownAddressNobodyAnswers) {
  TwoNodeBus rig;
  rig.run(5000);
  rig.bus.send_address(0x33);
  rig.bus.send_data(0x55);
  rig.run(60000);
  EXPECT_TRUE(rig.bus.master_log().empty());
  // The data frame stays pending: no node dropped SM2 to take it... but the
  // wire model delivers data frames to filtered nodes silently, so the
  // queue drains anyway.
  EXPECT_TRUE(rig.bus.idle());
}

}  // namespace
}  // namespace ascp::mcu
