// EventLog tests: emission, category/severity tallies, fixed-capacity ring
// wrap-around, payload storage and the emitter-declaration registry backing
// `platform_lint --events`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/events.hpp"

namespace ascp::obs {
namespace {

TEST(Events, EmitStoresAllFields) {
  EventLog log;
  log.emit(0.125, EventSeverity::Warn, EventCategory::Pll, "pll_lock_loss", "pickoff dead",
           {{"freq_hz", 15e3}, {"phase", 0.5}});
  ASSERT_EQ(log.size(), 1u);
  const auto ev = log.events();
  EXPECT_DOUBLE_EQ(ev[0].t_sim, 0.125);
  EXPECT_EQ(ev[0].severity, EventSeverity::Warn);
  EXPECT_EQ(ev[0].category, EventCategory::Pll);
  EXPECT_STREQ(ev[0].name, "pll_lock_loss");
  EXPECT_EQ(ev[0].detail, "pickoff dead");
  EXPECT_STREQ(ev[0].kv[0].key, "freq_hz");
  EXPECT_DOUBLE_EQ(ev[0].kv[0].value, 15e3);
  EXPECT_STREQ(ev[0].kv[1].key, "phase");
  EXPECT_EQ(ev[0].kv[2].key, nullptr);  // unused slots stay null
}

TEST(Events, CountsByCategoryAndSeverity) {
  EventLog log;
  log.emit(0.0, EventSeverity::Info, EventCategory::Agc, "agc_settled");
  log.emit(1.0, EventSeverity::Info, EventCategory::Agc, "agc_unsettled");
  log.emit(2.0, EventSeverity::Error, EventCategory::Dtc, "dtc_latch");
  EXPECT_EQ(log.count(EventCategory::Agc), 2u);
  EXPECT_EQ(log.count(EventCategory::Dtc), 1u);
  EXPECT_EQ(log.count(EventCategory::Watchdog), 0u);
  EXPECT_EQ(log.count(EventSeverity::Info), 2u);
  EXPECT_EQ(log.count(EventSeverity::Error), 1u);
}

TEST(Events, RingWrapsAtCapacityKeepingNewest) {
  EventLog log(4);
  for (int i = 0; i < 6; ++i)
    log.emit(static_cast<double>(i), EventSeverity::Debug, EventCategory::Scheduler, "tick");
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  // Retained window is the newest 4, visited oldest → newest.
  std::vector<double> ts;
  log.for_each([&](const Event& e) { ts.push_back(e.t_sim); });
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.front(), 2.0);
  EXPECT_DOUBLE_EQ(ts.back(), 5.0);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LT(ts[i - 1], ts[i]);
  // Tallies count *emitted* events, not just retained ones.
  EXPECT_EQ(log.count(EventCategory::Scheduler), 6u);
}

TEST(Events, CapacityOneRingAlwaysHoldsTheNewest) {
  // Degenerate ring: every emit lands exactly at the wrap point, so the
  // head bookkeeping is exercised on every write.
  EventLog log(1);
  for (int i = 0; i < 5; ++i)
    log.emit(static_cast<double>(i), EventSeverity::Info, EventCategory::Engine, "tick");
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.total(), 5u);
  EXPECT_EQ(log.dropped(), 4u);
  const auto ev = log.events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_DOUBLE_EQ(ev[0].t_sim, 4.0);
}

TEST(Events, DoubleWrapStaysOrderedOldestToNewest) {
  // More than two full revolutions: for_each must still visit a contiguous
  // strictly-increasing window ending at the newest emission.
  EventLog log(3);
  for (int i = 0; i < 11; ++i)
    log.emit(static_cast<double>(i), EventSeverity::Debug, EventCategory::Scheduler, "t");
  std::vector<double> ts;
  log.for_each([&](const Event& e) { ts.push_back(e.t_sim); });
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts[0], 8.0);
  EXPECT_DOUBLE_EQ(ts[1], 9.0);
  EXPECT_DOUBLE_EQ(ts[2], 10.0);
  EXPECT_EQ(log.dropped(), 8u);
}

TEST(Events, ClearEmptiesRingAndTallies) {
  EventLog log;
  log.emit(0.0, EventSeverity::Info, EventCategory::Fault, "fault_inject");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.count(EventCategory::Fault), 0u);
}

TEST(Events, EmitterRegistryTracksClaimants) {
  EventLog log;
  EXPECT_FALSE(log.emitter_declared(EventCategory::Supervisor));
  log.declare_emitter(EventCategory::Supervisor, "SafetySupervisor");
  log.declare_emitter(EventCategory::Supervisor, "SelfTestController");
  EXPECT_TRUE(log.emitter_declared(EventCategory::Supervisor));
  ASSERT_EQ(log.emitters(EventCategory::Supervisor).size(), 2u);
  EXPECT_EQ(log.emitters(EventCategory::Supervisor)[0], "SafetySupervisor");
  EXPECT_FALSE(log.emitter_declared(EventCategory::Mcu));
}

TEST(Events, NamesForSeveritiesAndCategories) {
  for (const auto c : kAllEventCategories) {
    EXPECT_NE(category_name(c), nullptr);
    EXPECT_GT(std::string(category_name(c)).size(), 0u);
  }
  EXPECT_NE(std::string(severity_name(EventSeverity::Debug)),
            std::string(severity_name(EventSeverity::Error)));
}

}  // namespace
}  // namespace ascp::obs
