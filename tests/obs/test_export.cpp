// Exporter tests: text report sections, JSON structural validity (balanced
// braces/brackets outside string literals, keys present, non-finite values
// sanitized) and Chrome-trace invariants (monotonic timestamps, required
// phases) — the same properties Perfetto's loader enforces.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace ascp::obs {
namespace {

/// Structural JSON check: quotes pair up, braces/brackets balance outside
/// strings and never go negative. Catches truncation and escaping bugs
/// without a full parser.
void expect_balanced_json(const std::string& js) {
  long brace = 0, bracket = 0;
  bool in_str = false, esc = false;
  for (const char c : js) {
    if (esc) {
      esc = false;
      continue;
    }
    if (in_str) {
      if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_FALSE(in_str) << "unterminated string literal";
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

/// All "ts":<num> values in emission order.
std::vector<double> timestamps(const std::string& js) {
  std::vector<double> ts;
  std::size_t pos = 0;
  while ((pos = js.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    ts.push_back(std::atof(js.c_str() + pos));
  }
  return ts;
}

/// A small populated observability bundle shared by the tests below.
struct Fixture {
  MetricRegistry metrics;
  EventLog events;
  TaskProfiler tasks;
  McuProfiler mcu;

  Fixture() {
    metrics.add(metrics.counter("gyro.output_samples"), 187.0);
    metrics.set(metrics.gauge("agc.gain"), 1.25);
    const auto h = metrics.histogram("gyro.output_v");
    for (int i = 0; i < 32; ++i) metrics.observe(h, 2.0 + 0.01 * i);

    events.emit(0.01, EventSeverity::Info, EventCategory::Pll, "pll_lock", {},
                {{"freq_hz", 15e3}});
    events.emit(0.02, EventSeverity::Warn, EventCategory::Pll, "pll_lock_loss");
    events.emit(0.05, EventSeverity::Error, EventCategory::Dtc, "dtc_latch", "DTC_PLL_UNLOCK");

    tasks.set_base_rate(1000.0);
    const int a = tasks.register_task("afe", 1, 0);
    const int b = tasks.register_task("dsp", 8, 7);
    for (long t = 0; t < 64; ++t) {
      tasks.record(a, t, 1e-7);
      if (t % 8 == 7) tasks.record(b, t, 3e-7);
    }
    tasks.record_run(0.064, 0.001);

    mcu.record_exec(0x0000, 0x90, 2, 2);   // MOV DPTR
    mcu.record_exec(0x0003, 0xF0, 2, 4);   // MOVX
    mcu.record_exec(0x0004, 0x80, 2, 6);   // SJMP
  }
};

TEST(Export, TextReportHasAllSections) {
  Fixture fx;
  const auto report =
      text_report(fx.metrics.snapshot(), &fx.events, &fx.tasks, &fx.mcu);
  EXPECT_NE(report.find("== metrics =="), std::string::npos);
  EXPECT_NE(report.find("== events =="), std::string::npos);
  EXPECT_NE(report.find("== scheduler =="), std::string::npos);
  EXPECT_NE(report.find("== mcu =="), std::string::npos);
  EXPECT_NE(report.find("gyro.output_samples"), std::string::npos);
  EXPECT_NE(report.find("pll_lock_loss"), std::string::npos);
  EXPECT_NE(report.find("dsp"), std::string::npos);
}

TEST(Export, TextReportOmitsNullSections) {
  Fixture fx;
  const auto report = text_report(fx.metrics.snapshot());
  EXPECT_NE(report.find("== metrics =="), std::string::npos);
  EXPECT_EQ(report.find("== events =="), std::string::npos);
  EXPECT_EQ(report.find("== scheduler =="), std::string::npos);
  EXPECT_EQ(report.find("== mcu =="), std::string::npos);
}

TEST(Export, JsonSnapshotIsStructurallyValid) {
  Fixture fx;
  const auto js = json_snapshot(fx.metrics.snapshot(), &fx.events, &fx.tasks, &fx.mcu);
  expect_balanced_json(js);
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  for (const char* key : {"\"metrics\"", "\"counters\"", "\"gauges\"", "\"histograms\"",
                          "\"events\"", "\"scheduler\"", "\"mcu\"", "\"recent\""})
    EXPECT_NE(js.find(key), std::string::npos) << key;
}

TEST(Export, JsonSanitizesNonFiniteValues) {
  MetricRegistry reg;
  reg.set(reg.gauge("bad"), std::nan(""));
  reg.set(reg.gauge("worse"), HUGE_VAL);
  const auto js = json_snapshot(reg.snapshot());
  expect_balanced_json(js);
  EXPECT_EQ(js.find("nan"), std::string::npos);
  EXPECT_EQ(js.find("inf"), std::string::npos);
}

TEST(Export, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  // Control characters must not leak raw into the output.
  const auto esc = json_escape(std::string("x\x01y", 3));
  EXPECT_EQ(esc.find('\x01'), std::string::npos);
}

TEST(Export, ChromeTraceTimestampsMonotonic) {
  Fixture fx;
  const auto js = chrome_trace_json(fx.tasks, &fx.events);
  expect_balanced_json(js);
  EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  // Every phase kind present: metadata, duration slices, event instants.
  EXPECT_NE(js.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);
  const auto ts = timestamps(js);
  ASSERT_GT(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i)
    ASSERT_GE(ts[i], ts[i - 1]) << "trace event " << i << " goes backwards";
}

TEST(Export, ChromeTraceOfEmptyProfilerIsValid) {
  TaskProfiler tasks;
  const auto js = chrome_trace_json(tasks);
  expect_balanced_json(js);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace ascp::obs
