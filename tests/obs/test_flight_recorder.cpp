// FlightRecorder tests: the three record kinds, fixed-capacity ring wrap,
// truncating name/detail copies (records must outlive their producers — the
// .blackbox contract), the EventLog tee and clear().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"

namespace ascp::obs {
namespace {

std::vector<FlightRecord> all(const FlightRecorder& fr) {
  std::vector<FlightRecord> v;
  fr.for_each([&](const FlightRecord& r) { v.push_back(r); });
  return v;
}

TEST(FlightRecorder, RecordsAllThreeKinds) {
  FlightRecorder fr;
  fr.record_event(0.1, 2, 8, "tick_failed", "stall detected", "channel", 3.0, "ms", 12.5);
  fr.record_metric(0.2, "channel.outputs", 64.0);
  fr.record_probe(0.3, 4, 12345, 0.25, -0.5);
  ASSERT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.count(FlightKind::Event), 1u);
  EXPECT_EQ(fr.count(FlightKind::MetricDelta), 1u);
  EXPECT_EQ(fr.count(FlightKind::ProbeSample), 1u);

  const auto v = all(fr);
  EXPECT_EQ(v[0].kind, FlightKind::Event);
  EXPECT_EQ(v[0].severity, 2);
  EXPECT_EQ(v[0].category, 8);
  EXPECT_STREQ(v[0].name, "tick_failed");
  EXPECT_STREQ(v[0].detail, "stall detected");
  EXPECT_STREQ(v[0].k0, "channel");
  EXPECT_DOUBLE_EQ(v[0].v0, 3.0);
  EXPECT_STREQ(v[0].k1, "ms");
  EXPECT_DOUBLE_EQ(v[0].v1, 12.5);

  EXPECT_EQ(v[1].kind, FlightKind::MetricDelta);
  EXPECT_STREQ(v[1].name, "channel.outputs");
  EXPECT_DOUBLE_EQ(v[1].a, 64.0);

  EXPECT_EQ(v[2].kind, FlightKind::ProbeSample);
  EXPECT_EQ(v[2].category, 4);  // ProbePoint rides in `category`
  EXPECT_EQ(v[2].tick, 12345);
  EXPECT_DOUBLE_EQ(v[2].a, 0.25);
  EXPECT_DOUBLE_EQ(v[2].b, -0.5);
}

TEST(FlightRecorder, RingWrapsKeepingNewest) {
  FlightRecorder fr(4);
  for (int i = 0; i < 10; ++i) fr.record_metric(static_cast<double>(i), "m", 1.0);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  EXPECT_EQ(fr.count(FlightKind::MetricDelta), 10u);  // tallies count written
  const auto v = all(fr);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v.front().t_sim, 6.0);  // oldest retained, in order
  EXPECT_DOUBLE_EQ(v.back().t_sim, 9.0);
}

TEST(FlightRecorder, NameAndDetailTruncateIntoFixedBuffers) {
  FlightRecorder fr;
  const std::string long_name(64, 'n');
  const std::string long_detail(128, 'd');
  fr.record_event(0.0, 0, 0, long_name.c_str(), long_detail.c_str());
  const auto v = all(fr);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(std::string(v[0].name), std::string(23, 'n'));    // 24-byte buffer
  EXPECT_EQ(std::string(v[0].detail), std::string(39, 'd'));  // 40-byte buffer
}

TEST(FlightRecorder, EventLogTeeMirrorsEmissions) {
  // The tee is how supervisor/DTC transitions reach the black-box ring
  // without a second emission site: every emit() lands in both.
  FlightRecorder fr;
  EventLog log;
  log.emit(0.0, EventSeverity::Info, EventCategory::Dtc, "before_tee");
  log.set_flight_recorder(&fr);
  log.emit(1.0, EventSeverity::Error, EventCategory::Engine, "tick_failed", "crash",
           {{"channel", 2.0}});
  log.set_flight_recorder(nullptr);
  log.emit(2.0, EventSeverity::Info, EventCategory::Engine, "after_detach");

  EXPECT_EQ(log.total(), 3u);
  ASSERT_EQ(fr.size(), 1u);  // only the emission while attached
  const auto v = all(fr);
  EXPECT_EQ(v[0].kind, FlightKind::Event);
  EXPECT_DOUBLE_EQ(v[0].t_sim, 1.0);
  EXPECT_EQ(v[0].severity, static_cast<std::uint8_t>(EventSeverity::Error));
  EXPECT_EQ(v[0].category, static_cast<std::uint8_t>(EventCategory::Engine));
  EXPECT_STREQ(v[0].name, "tick_failed");
  EXPECT_STREQ(v[0].detail, "crash");
  EXPECT_STREQ(v[0].k0, "channel");
  EXPECT_DOUBLE_EQ(v[0].v0, 2.0);
}

TEST(FlightRecorder, ClearEmptiesRingAndTallies) {
  FlightRecorder fr;
  fr.record_metric(0.0, "m", 1.0);
  fr.record_probe(0.0, 0, 0, 0.0, 0.0);
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total(), 0u);
  EXPECT_EQ(fr.count(FlightKind::MetricDelta), 0u);
  EXPECT_EQ(fr.count(FlightKind::ProbeSample), 0u);
}

TEST(FlightRecorder, KindNamesAreDistinct) {
  EXPECT_STRNE(flight_kind_name(FlightKind::Event), flight_kind_name(FlightKind::MetricDelta));
  EXPECT_STRNE(flight_kind_name(FlightKind::MetricDelta),
               flight_kind_name(FlightKind::ProbeSample));
}

}  // namespace
}  // namespace ascp::obs
