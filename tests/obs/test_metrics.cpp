// MetricRegistry tests: counter/gauge/histogram semantics, the log-2 bucket
// layout (percentiles are *exact* for values placed on bucket edges — the
// distributions below use powers of two on purpose), sharded recording from
// multiple threads, and capacity limits.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ascp::obs {
namespace {

TEST(Metrics, CounterGetOrCreateAndAdd) {
  MetricRegistry reg;
  const auto id = reg.counter("a.count");
  EXPECT_EQ(reg.counter("a.count"), id);  // same name → same id
  reg.add(id);
  reg.add(id, 4.0);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("a.count"), 5.0);
  EXPECT_DOUBLE_EQ(snap.counter_value("missing"), 0.0);
}

TEST(Metrics, GaugeLastValueWins) {
  MetricRegistry reg;
  const auto id = reg.gauge("g");
  reg.set(id, 1.5);
  reg.set(id, -7.25);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "g");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -7.25);
}

TEST(Metrics, SnapshotSortedByName) {
  MetricRegistry reg;
  reg.add(reg.counter("zeta"));
  reg.add(reg.counter("alpha"));
  reg.add(reg.counter("mid"));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
}

TEST(Metrics, BucketLayout) {
  // Bucket i ≥ 1 covers [2^(kMinExp+i-1), 2^(kMinExp+i)); bucket 0 catches
  // v ≤ 0 and the deep underflow range.
  EXPECT_EQ(MetricRegistry::bucket_index(0.0), 0);
  EXPECT_EQ(MetricRegistry::bucket_index(-3.0), 0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(1.0), 1.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(1.999), 1.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(2.0), 2.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(3.0), 2.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(1024.0), 1024.0);
  EXPECT_DOUBLE_EQ(MetricRegistry::bucket_floor(0.5), 0.5);
  // Monotone non-decreasing index across magnitudes.
  int prev = -1;
  for (double v : {1e-9, 1e-3, 0.5, 1.0, 2.0, 100.0, 1e6}) {
    const int idx = MetricRegistry::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Metrics, HistogramExactPercentilesOnBucketEdges) {
  // 50×1, 45×4, 4×16, 1×64 — all powers of two, so every value IS its
  // bucket's lower edge and the rank → bucket walk reports it exactly:
  //   p50 rank 50  → cumulative 50 at bucket(1)  → 1
  //   p95 rank 95  → cumulative 95 at bucket(4)  → 4
  //   p99 rank 99  → cumulative 99 at bucket(16) → 16
  MetricRegistry reg;
  const auto id = reg.histogram("lat");
  for (int i = 0; i < 50; ++i) reg.observe(id, 1.0);
  for (int i = 0; i < 45; ++i) reg.observe(id, 4.0);
  for (int i = 0; i < 4; ++i) reg.observe(id, 16.0);
  reg.observe(id, 64.0);

  const auto st = reg.snapshot().histogram_stats("lat");
  EXPECT_EQ(st.count, 100u);
  EXPECT_DOUBLE_EQ(st.sum, 50.0 + 180.0 + 64.0 + 64.0);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 64.0);
  EXPECT_DOUBLE_EQ(st.p50, 1.0);
  EXPECT_DOUBLE_EQ(st.p95, 4.0);
  EXPECT_DOUBLE_EQ(st.p99, 16.0);
  EXPECT_DOUBLE_EQ(st.mean(), 3.58);
}

TEST(Metrics, HistogramPercentilesClampToExactExtrema) {
  // A single off-edge value: the bucket floor (2.0 for 3.5) undershoots the
  // true minimum, so every percentile must clamp up to the tracked min.
  MetricRegistry reg;
  const auto id = reg.histogram("one");
  reg.observe(id, 3.5);
  const auto st = reg.snapshot().histogram_stats("one");
  EXPECT_EQ(st.count, 1u);
  EXPECT_DOUBLE_EQ(st.min, 3.5);
  EXPECT_DOUBLE_EQ(st.max, 3.5);
  EXPECT_DOUBLE_EQ(st.p50, 3.5);
  EXPECT_DOUBLE_EQ(st.p99, 3.5);
}

TEST(Metrics, HistogramEmptyStatsAreAllZero) {
  // Both a histogram that was created but never observed and a name that
  // does not exist must come back as the all-zero stats block — percentile
  // code must not walk buckets for count == 0.
  MetricRegistry reg;
  reg.histogram("created_never_observed");
  for (const char* name : {"created_never_observed", "no_such_histogram"}) {
    const auto st = reg.snapshot().histogram_stats(name);
    EXPECT_EQ(st.count, 0u) << name;
    EXPECT_DOUBLE_EQ(st.sum, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.min, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.max, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.p50, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.p95, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.p99, 0.0) << name;
    EXPECT_DOUBLE_EQ(st.mean(), 0.0) << name;  // no divide-by-zero
  }
}

TEST(Metrics, HistogramSingleSampleClampsAllPercentiles) {
  // One on-edge sample: every percentile rank resolves to the only bucket,
  // and min == max == every percentile.
  MetricRegistry reg;
  const auto id = reg.histogram("single");
  reg.observe(id, 2.0);
  const auto st = reg.snapshot().histogram_stats("single");
  EXPECT_EQ(st.count, 1u);
  EXPECT_DOUBLE_EQ(st.min, 2.0);
  EXPECT_DOUBLE_EQ(st.max, 2.0);
  EXPECT_DOUBLE_EQ(st.p50, 2.0);
  EXPECT_DOUBLE_EQ(st.p95, 2.0);
  EXPECT_DOUBLE_EQ(st.p99, 2.0);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
}

TEST(Metrics, HistogramBucketZeroUnderflowClampsToTrackedMin) {
  // Zero and deep-underflow values land in bucket 0, whose floor (0.0)
  // undershoots nothing only for exact zeros — percentiles must clamp to the
  // tracked extrema either way, and max must clamp *down* for bucket floors
  // that overshoot (impossible) or percentile walks that hit the last bucket.
  MetricRegistry reg;
  const auto id = reg.histogram("tiny");
  reg.observe(id, 0.0);
  reg.observe(id, 1e-15);  // far below 2^kMinExp → bucket 0
  ASSERT_EQ(MetricRegistry::bucket_index(1e-15), 0);
  const auto st = reg.snapshot().histogram_stats("tiny");
  EXPECT_EQ(st.count, 2u);
  EXPECT_DOUBLE_EQ(st.min, 0.0);
  EXPECT_DOUBLE_EQ(st.max, 1e-15);
  EXPECT_DOUBLE_EQ(st.p50, 0.0);   // bucket-0 floor, clamped to min
  EXPECT_LE(st.p99, st.max);       // never reports above the tracked max
  EXPECT_GE(st.p99, st.min);
}

TEST(Metrics, ShardedRecordingMergesAcrossThreads) {
  MetricRegistry reg;
  const auto c = reg.counter("hits");
  const auto h = reg.histogram("vals");
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, 2.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("hits"), kThreads * kPerThread);
  const auto st = snap.histogram_stats("vals");
  EXPECT_EQ(st.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(st.min, 2.0);
  EXPECT_DOUBLE_EQ(st.max, 2.0);
  EXPECT_DOUBLE_EQ(st.p50, 2.0);
}

TEST(Metrics, ResetValuesKeepsNamesAndIds) {
  MetricRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 9.0);
  reg.set(reg.gauge("g"), 3.0);
  reg.observe(reg.histogram("h"), 8.0);
  reg.reset_values();
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("c"), 0.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histogram_stats("h").count, 0u);
  EXPECT_EQ(reg.counter("c"), c);  // id survives the reset
}

TEST(Metrics, ThrowsPastFixedCapacity) {
  MetricRegistry reg;
  for (std::size_t i = 0; i < MetricRegistry::kMaxGauges; ++i)
    reg.gauge("g" + std::to_string(i));
  EXPECT_THROW(reg.gauge("one-too-many"), std::length_error);
  // Existing names still intern fine at capacity.
  EXPECT_NO_THROW(reg.gauge("g0"));
}

}  // namespace
}  // namespace ascp::obs
