// System-level observability tests.
//
// The two contracts that make telemetry trustworthy:
//   1. Zero perturbation — attaching the full observability stack must not
//      change a single output bit. Proven by re-running all six golden
//      scenarios (tests/core/test_golden_traces.cpp) with and without the
//      stack and comparing the output streams bit-for-bit.
//   2. Faithful narration — events must match what the simulation actually
//      did: exactly one supervisor event per state change, PLL lock-loss /
//      relock events mirroring the PR-1 lock-loss behaviour, MCU profile
//      totals consistent with the executed firmware.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/firmware_corpus.hpp"
#include "core/baselines.hpp"
#include "core/gyro_system.hpp"
#include "obs/observability.hpp"
#include "safety/standard_faults.hpp"

namespace {

using namespace ascp;

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

/// Bit-exact stream comparison with a readable first-divergence report.
void expect_bit_identical(const std::vector<double>& ref, const std::vector<double>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(bits(ref[i]), bits(got[i])) << "first divergence at sample " << i;
}

/// Runs one GyroSystem golden scenario, optionally with the full stack
/// attached, returning the output stream.
template <typename Scenario>
std::vector<double> run_gyro_scenario(core::GyroSystemConfig cfg, unsigned seed,
                                      bool with_obs, obs::Observability* obs,
                                      Scenario&& scenario) {
  core::GyroSystem sys(cfg);
  sys.power_on(seed);
  if (with_obs) sys.set_observability(obs->sink());
  std::vector<double> out;
  scenario(sys, out);
  return out;
}

template <typename ScenarioFn>
void golden_bit_identity_gyro(core::GyroSystemConfig cfg, unsigned seed, ScenarioFn scenario) {
  const auto ref = run_gyro_scenario(cfg, seed, false, nullptr, scenario);
  obs::Observability obs;
  const auto instrumented = run_gyro_scenario(cfg, seed, true, &obs, scenario);
  ASSERT_FALSE(ref.empty());
  expect_bit_identical(ref, instrumented);
  // The instrumented run must actually have observed something — otherwise
  // this test would pass vacuously with a dead sink.
  EXPECT_GT(obs.events.total(), 0u);
  EXPECT_DOUBLE_EQ(obs.metrics.snapshot().counter_value("gyro.output_samples"),
                   static_cast<double>(instrumented.size()));
}

// ---- 1. bit-identity over the six golden scenarios -------------------------

TEST(ObsBitIdentity, FullFidelityClosedLoopAcrossTwoRuns) {
  golden_bit_identity_gyro(
      core::default_gyro_system(core::Fidelity::Full), 7,
      [](core::GyroSystem& sys, std::vector<double>& out) {
        sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.05, &out);
        sys.run(sensor::Profile::step(90.0, 0.01), sensor::Profile::ramp(25.0, 45.0, 0.0, 0.1),
                0.1, &out);
      });
}

TEST(ObsBitIdentity, IdealFidelityClosedLoop) {
  golden_bit_identity_gyro(
      core::default_gyro_system(core::Fidelity::Ideal), 3,
      [](core::GyroSystem& sys, std::vector<double>& out) {
        sys.run(sensor::Profile::sine(50.0, 20.0), sensor::Profile::constant(25.0), 0.1, &out);
      });
}

TEST(ObsBitIdentity, FullFidelityWithSafetyAndMcu) {
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_safety = true;
  cfg.with_mcu = true;
  golden_bit_identity_gyro(
      cfg, 11, [](core::GyroSystem& sys, std::vector<double>& out) {
        sys.run(sensor::Profile::constant(30.0), sensor::Profile::constant(35.0), 0.1, &out);
      });
}

TEST(ObsBitIdentity, IdealOpenLoopBatchedPath) {
  // The batched block-DSP path: the obs task must not force the scalar path.
  auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
  cfg.sense.mode = core::SenseMode::OpenLoop;
  golden_bit_identity_gyro(
      cfg, 5, [](core::GyroSystem& sys, std::vector<double>& out) {
        sys.run(sensor::Profile::constant(40.0), sensor::Profile::constant(25.0), 0.1, &out);
      });
}

template <typename ScenarioFn>
void golden_bit_identity_baseline(const core::BaselineConfig& cfg, unsigned seed,
                                  ScenarioFn scenario) {
  core::AnalogGyroBaseline ref_dut(cfg);
  ref_dut.power_on(seed);
  std::vector<double> ref;
  scenario(ref_dut, ref);

  core::AnalogGyroBaseline dut(cfg);
  dut.power_on(seed);
  obs::Observability obs;
  dut.set_observability(obs.sink());
  std::vector<double> got;
  scenario(dut, got);

  ASSERT_FALSE(ref.empty());
  expect_bit_identical(ref, got);
  EXPECT_GT(obs.tasks.sim_seconds(), 0.0);  // profiler saw the runs
}

TEST(ObsBitIdentity, Adxrs300BaselinePhaseCarriesAcrossRuns) {
  golden_bit_identity_baseline(
      core::adxrs300_like(), 21, [](core::AnalogGyroBaseline& dut, std::vector<double>& out) {
        dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.033335, &out);
        dut.run(sensor::Profile::constant(100.0), sensor::Profile::constant(45.0), 0.05, &out);
      });
}

TEST(ObsBitIdentity, GyrostarBaseline) {
  golden_bit_identity_baseline(
      core::gyrostar_like(), 33, [](core::AnalogGyroBaseline& dut, std::vector<double>& out) {
        dut.run(sensor::Profile::step(80.0, 0.02), sensor::Profile::constant(25.0), 0.06, &out);
      });
}

// ---- 2. event-pipeline faithfulness ----------------------------------------

TEST(ObsEventPipeline, SupervisorEmitsExactlyOneEventPerStateChange) {
  auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  gyro.power_on(1);
  obs::Observability obs;
  gyro.set_observability(obs.sink());
  auto* sup = gyro.supervisor();
  ASSERT_NE(sup, nullptr);
  const auto initial = sup->state();

  const auto run_for = [&](double s) {
    gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), s, nullptr);
  };
  for (int i = 0; i < 30 && !sup->armed(); ++i) run_for(0.1);
  ASSERT_TRUE(sup->armed());

  // A transient register SEU: latches a DTC (→ DEGRADED) and is scrubbed
  // back out (→ NOMINAL), giving at least two genuine transitions.
  safety::FaultCampaign campaign;
  safety::faults::add_register_bit_flip(campaign, gyro, gyro.dsp_samples() + 1000);
  gyro.set_fault_campaign(&campaign);
  run_for(2.5);

  // Collect the supervisor transition events and check they form a connected
  // chain: from ≠ to (no duplicate events for an unchanged state), each
  // event's `from` is the previous event's `to` (no missed transition), and
  // the chain endpoints match the states sampled around the run.
  struct Edge {
    double t, from, to;
  };
  std::vector<Edge> edges;
  obs.events.for_each([&](const obs::Event& e) {
    if (e.category != obs::EventCategory::Supervisor) return;
    ASSERT_STREQ(e.name, "state_transition");
    ASSERT_STREQ(e.kv[0].key, "from");
    ASSERT_STREQ(e.kv[1].key, "to");
    edges.push_back({e.t_sim, e.kv[0].value, e.kv[1].value});
  });
  ASSERT_GE(edges.size(), 2u) << "fault should have caused at least enter+leave DEGRADED";
  EXPECT_DOUBLE_EQ(edges.front().from, static_cast<double>(initial));
  EXPECT_DOUBLE_EQ(edges.back().to, static_cast<double>(sup->state()));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_NE(edges[i].from, edges[i].to) << "self-transition event " << i;
    if (i) {
      EXPECT_DOUBLE_EQ(edges[i].from, edges[i - 1].to) << "chain break at event " << i;
      EXPECT_GE(edges[i].t, edges[i - 1].t);
    }
  }
  // The metric and the event stream agree on the transition count.
  EXPECT_DOUBLE_EQ(obs.metrics.snapshot().counter_value("supervisor.state_transitions"),
                   static_cast<double>(edges.size()));
  EXPECT_EQ(obs.events.count(obs::EventCategory::Supervisor),
            static_cast<std::uint64_t>(edges.size()));
}

TEST(ObsEventPipeline, PllLockLossAndRelockEvents) {
  // System-level mirror of Pll.LockLossAndRelock (tests/dsp/test_pll.cpp):
  // an NCO phase jump mid-run throws the drive loop off lock; the event
  // stream must narrate lock → loss → relock in order, with the relock
  // inside the same reacquisition bound the PR-1 test enforces (< ~0.84 s).
  auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
  core::GyroSystem gyro(cfg);
  gyro.power_on(1);
  obs::Observability obs;
  gyro.set_observability(obs.sink());

  const auto run_for = [&](double s) {
    gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), s, nullptr);
  };
  run_for(1.0);
  ASSERT_TRUE(gyro.locked());
  ASSERT_GE(obs.events.count(obs::EventCategory::Pll), 1u) << "no pll_lock during acquisition";

  const double fs_dsp = cfg.analog_fs / cfg.adc_div;
  const long inject_at = gyro.dsp_samples() + 1000;
  const double t_inject = static_cast<double>(inject_at) / fs_dsp;
  safety::FaultCampaign campaign;
  safety::faults::add_nco_phase_jump(campaign, gyro, inject_at);
  gyro.set_fault_campaign(&campaign);
  run_for(2.0);

  // First lock-loss at/after the injection, then the first relock after it.
  double t_loss = -1.0, t_relock = -1.0;
  obs.events.for_each([&](const obs::Event& e) {
    if (e.category != obs::EventCategory::Pll) return;
    const std::string name = e.name;
    if (name == "pll_lock_loss" && t_loss < 0 && e.t_sim >= t_inject) t_loss = e.t_sim;
    if (name == "pll_relock" && t_loss >= 0 && t_relock < 0) t_relock = e.t_sim;
  });
  ASSERT_GE(t_loss, 0.0) << "phase jump never deasserted lock";
  ASSERT_GE(t_relock, 0.0) << "PLL never relocked after the phase jump";
  EXPECT_GE(t_loss, t_inject);
  EXPECT_LT(t_loss - t_inject, 5000.0 / fs_dsp);  // unlock bound from Pll.LockLossAndRelock
  EXPECT_LT(t_relock - t_loss, 1.0) << "reacquisition slower than the PR-1 bound";
  EXPECT_TRUE(gyro.locked());
}

TEST(ObsEventPipeline, McuProfileConsistentWithExecutedFirmware) {
  auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  gyro.platform().load_firmware(
      analysis::corpus::assemble_watchdog_kicker(gyro.platform().config().map).image);
  gyro.power_on(1);
  obs::Observability obs;
  gyro.set_observability(obs.sink());
  gyro.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.05, nullptr);

  ASSERT_GT(obs.mcu.instructions(), 0u);
  EXPECT_GE(obs.mcu.cycles(), obs.mcu.instructions());  // ≥1 cycle per insn

  // PC histogram totals must equal the instruction count, and top_pcs must
  // come back sorted by count descending.
  const auto pcs = obs.mcu.top_pcs(10);
  ASSERT_FALSE(pcs.empty());
  for (std::size_t i = 1; i < pcs.size(); ++i) EXPECT_GE(pcs[i - 1].count, pcs[i].count);

  std::uint64_t op_total = 0;
  for (const auto& op : obs.mcu.top_opcodes(256)) op_total += op.count;
  EXPECT_EQ(op_total, obs.mcu.instructions());
}

}  // namespace
