// SpanLog tests: causal ancestry (explicit parents and the current-parent
// sentinel), interleaved open spans addressed by id, ring wrap, open-table
// overflow accounting, the SpanScope RAII contract under exceptions and the
// Chrome-trace export of span records.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/span.hpp"

namespace ascp::obs {
namespace {

std::vector<Span> all(const SpanLog& log) {
  std::vector<Span> v;
  log.for_each([&](const Span& s) { v.push_back(s); });
  return v;
}

TEST(Spans, CompleteStoresAllFieldsWithTraceId) {
  SpanLog log;
  log.set_trace_id(0xBEEF);
  const auto id = log.complete("fleet.tick", SpanCategory::Fleet, 1.0, 1.5, 250.0,
                               /*parent=*/0);
  ASSERT_NE(id, 0u);
  const auto v = all(log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].trace_id, 0xBEEFu);
  EXPECT_EQ(v[0].span_id, id);
  EXPECT_EQ(v[0].parent_id, 0u);  // forced root
  EXPECT_STREQ(v[0].name, "fleet.tick");
  EXPECT_EQ(v[0].category, SpanCategory::Fleet);
  EXPECT_DOUBLE_EQ(v[0].t_begin, 1.0);
  EXPECT_DOUBLE_EQ(v[0].t_end, 1.5);
  EXPECT_DOUBLE_EQ(v[0].wall_us, 250.0);
}

TEST(Spans, CurrentParentSentinelNestsUnderInnermostOpen) {
  SpanLog log;
  const auto outer = log.begin("tick", SpanCategory::Fleet, 0.0, /*parent=*/0);
  const auto inner = log.begin("incident", SpanCategory::Fleet, 0.1);  // kCurrentParent
  const auto leaf = log.begin("restart", SpanCategory::Fleet, 0.2);
  EXPECT_EQ(log.open_depth(), 3u);
  EXPECT_EQ(log.current(), leaf);
  EXPECT_TRUE(log.end(leaf, 0.3));
  EXPECT_TRUE(log.end(inner, 0.4));
  EXPECT_TRUE(log.end(outer, 0.5));
  const auto v = all(log);  // committed in end order
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].parent_id, inner);  // leaf under incident
  EXPECT_EQ(v[1].parent_id, outer);  // incident under tick
  EXPECT_EQ(v[2].parent_id, 0u);     // tick is a root
}

TEST(Spans, InterleavedEndsAddressedById) {
  // Fleet incidents on different channels interleave: a is begun first but
  // ended last. An open *table* (not a stack) must handle that.
  SpanLog log;
  const auto a = log.begin("incident_a", SpanCategory::Fleet, 0.0, /*parent=*/0);
  const auto b = log.begin("incident_b", SpanCategory::Fleet, 1.0, /*parent=*/0);
  EXPECT_TRUE(log.end(b, 2.0));
  EXPECT_TRUE(log.end(a, 3.0));
  EXPECT_FALSE(log.end(a, 4.0));  // double close
  EXPECT_FALSE(log.end(0, 4.0));  // the dropped-span sentinel is a safe no-op
  const auto v = all(log);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_STREQ(v[0].name, "incident_b");
  EXPECT_DOUBLE_EQ(v[1].t_end, 3.0);
}

TEST(Spans, AnnotateFillsTwoSlotsThenIgnores) {
  SpanLog log;
  const auto id = log.begin("restart", SpanCategory::Fleet, 0.0);
  log.annotate(id, "channel", 3.0);
  log.annotate(id, "backoff_ticks", 2.0);
  log.annotate(id, "overflow", 9.0);  // both slots taken → dropped
  log.end(id, 1.0);
  const auto v = all(log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_STREQ(v[0].k0, "channel");
  EXPECT_DOUBLE_EQ(v[0].v0, 3.0);
  EXPECT_STREQ(v[0].k1, "backoff_ticks");
  EXPECT_DOUBLE_EQ(v[0].v1, 2.0);
}

TEST(Spans, RingWrapsKeepingNewestAndTallies) {
  SpanLog log(4);
  for (int i = 0; i < 7; ++i)
    log.complete("s", SpanCategory::Channel, static_cast<double>(i),
                 static_cast<double>(i) + 0.5);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 7u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.count(SpanCategory::Channel), 7u);  // tallies count committed
  const auto v = all(log);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v.front().t_begin, 3.0);  // oldest retained
  EXPECT_DOUBLE_EQ(v.back().t_begin, 6.0);   // newest
}

TEST(Spans, OpenTableOverflowDropsNotAllocates) {
  SpanLog log;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < SpanLog::kMaxOpenSpans; ++i)
    ids.push_back(log.begin("open", SpanCategory::Channel, 0.0, /*parent=*/0));
  EXPECT_EQ(log.open_depth(), SpanLog::kMaxOpenSpans);
  const auto overflow = log.begin("too_many", SpanCategory::Channel, 0.0);
  EXPECT_EQ(overflow, 0u);  // dropped, not queued
  EXPECT_EQ(log.open_dropped(), 1u);
  for (const auto id : ids) EXPECT_TRUE(log.end(id, 1.0));
  EXPECT_EQ(log.size(), SpanLog::kMaxOpenSpans);
}

TEST(Spans, LongNameTruncatedNotOverrun) {
  SpanLog log;
  log.complete("a_very_long_span_name_that_exceeds_the_fixed_buffer",
               SpanCategory::Scheduler, 0.0, 1.0);
  const auto v = all(log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(std::string(v[0].name), std::string("a_very_long_span_name_t"));  // 23 + NUL
}

TEST(Spans, ScopeClosesOnExceptionAtBeginTime) {
  SpanLog log;
  try {
    SpanScope scope(&log, "channel.advance", SpanCategory::Channel, 2.0);
    ASSERT_NE(scope.id(), 0u);
    throw std::runtime_error("injected crash");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(log.open_depth(), 0u);  // never leaks the fixed open table
  const auto v = all(log);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].t_begin, 2.0);
  EXPECT_DOUBLE_EQ(v[0].t_end, 2.0);  // closed at begin time, not a fake span
}

TEST(Spans, ScopeWithNullLogIsNoOp) {
  SpanScope scope(nullptr, "noop", SpanCategory::Channel, 0.0);
  EXPECT_EQ(scope.id(), 0u);
  scope.annotate("ignored", 1.0);
  scope.close(1.0);  // must not crash
}

TEST(Spans, ChromeTraceExportCarriesAncestryAndPayload) {
  SpanLog log;
  log.set_trace_id(7);
  const auto parent = log.begin("fleet.tick", SpanCategory::Fleet, 0.0, /*parent=*/0);
  const auto child = log.begin("restart", SpanCategory::Fleet, 0.001);
  log.annotate(child, "channel", 2.0);
  log.end(child, 0.002);
  log.end(parent, 0.005);

  TaskProfiler tasks;  // empty — only the span track matters here
  const std::string json = chrome_trace_json(tasks, nullptr, &log);
  EXPECT_NE(json.find("\"name\":\"restart\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fleet.tick\""), std::string::npos);
  EXPECT_NE(json.find("\"channel\":2"), std::string::npos);
  // Ancestry is exported as id/parent args so Perfetto queries can join them.
  EXPECT_NE(json.find("\"parent_id\":\"" + std::to_string(parent) + "\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"7\""), std::string::npos);
}

}  // namespace
}  // namespace ascp::obs
