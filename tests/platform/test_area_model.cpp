#include <gtest/gtest.h>

#include "platform/area_model.hpp"

namespace ascp::platform {
namespace {

TEST(AreaModel, EmptyIsZero) {
  AreaModel m;
  EXPECT_DOUBLE_EQ(m.total_kgates(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_analog_mm2(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_power_mw(), 0.0);
}

TEST(AreaModel, InstantiateAccumulates) {
  AreaModel m;
  m.instantiate("cpu8051");
  const double one = m.total_kgates();
  m.instantiate("cpu8051");
  EXPECT_DOUBLE_EQ(m.total_kgates(), 2 * one);
}

TEST(AreaModel, UnknownIpThrows) {
  AreaModel m;
  EXPECT_THROW(m.instantiate("flux_capacitor"), std::invalid_argument);
}

TEST(AreaModel, PortfolioHasAnalogAndDigital) {
  const auto& p = ip_portfolio();
  EXPECT_GT(p.at("fir").kgates, 0.0);
  EXPECT_DOUBLE_EQ(p.at("fir").analog_mm2, 0.0);
  EXPECT_GT(p.at("sar_adc12").analog_mm2, 0.0);
}

TEST(AreaModel, UniversalContainsWholePortfolio) {
  const auto u = AreaModel::universal();
  EXPECT_EQ(u.instances().size(), ip_portfolio().size());
}

TEST(AreaModel, UniversalCostsMoreThanAnySubset) {
  AreaModel subset;
  subset.instantiate("cpu8051");
  subset.instantiate("fir");
  subset.instantiate("sar_adc12");
  const auto u = AreaModel::universal();
  EXPECT_GT(u.total_kgates(), subset.total_kgates());
  EXPECT_GT(u.total_analog_mm2(), subset.total_analog_mm2());
  EXPECT_GT(u.total_power_mw(), subset.total_power_mw());
}

TEST(AreaModel, ReportMentionsEveryInstance) {
  AreaModel m;
  m.instantiate("uart");
  m.instantiate("nco", 2);
  const auto text = m.report("test");
  EXPECT_NE(text.find("uart"), std::string::npos);
  EXPECT_NE(text.find("nco"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace ascp::platform
