#include <gtest/gtest.h>

#include "platform/jtag.hpp"

namespace ascp::platform {
namespace {

TEST(TapFsm, ResetFromAnywhereInFiveOnes) {
  // From every state, five TMS=1 clocks land in Test-Logic-Reset.
  for (int s = 0; s < 16; ++s) {
    TapState state = static_cast<TapState>(s);
    for (int i = 0; i < 5; ++i) state = tap_next(state, true);
    EXPECT_EQ(state, TapState::TestLogicReset) << s;
  }
}

TEST(TapFsm, CanonicalDrPath) {
  TapState s = TapState::RunTestIdle;
  s = tap_next(s, true);   // SelectDR
  EXPECT_EQ(s, TapState::SelectDrScan);
  s = tap_next(s, false);  // CaptureDR
  EXPECT_EQ(s, TapState::CaptureDr);
  s = tap_next(s, false);  // ShiftDR
  EXPECT_EQ(s, TapState::ShiftDr);
  s = tap_next(s, false);  // stays
  EXPECT_EQ(s, TapState::ShiftDr);
  s = tap_next(s, true);   // Exit1
  s = tap_next(s, true);   // Update
  s = tap_next(s, false);  // Idle
  EXPECT_EQ(s, TapState::RunTestIdle);
}

TEST(TapFsm, PauseAndResumePath) {
  TapState s = TapState::ShiftIr;
  s = tap_next(s, true);   // Exit1IR
  s = tap_next(s, false);  // PauseIR
  EXPECT_EQ(s, TapState::PauseIr);
  s = tap_next(s, true);   // Exit2IR
  s = tap_next(s, false);  // back to ShiftIR
  EXPECT_EQ(s, TapState::ShiftIr);
}

class JtagFixture : public ::testing::Test {
 protected:
  JtagFixture() : dev0(0xDEADBEEF, &regs0), dev1(0x1A5CD001, &regs1), host(chain) {
    regs0.define("gain", 0, RegKind::Config, 0x0010);
    regs0.define("status", 1, RegKind::Status, 0x0001);
    regs1.define("mode", 0, RegKind::Config, 0x0002);
    chain.add(&dev0);
    chain.add(&dev1);
    host.reset();
  }

  RegisterFile regs0, regs1;
  JtagDevice dev0, dev1;
  JtagChain chain;
  JtagHost host;
};

TEST_F(JtagFixture, IdcodeReadPerDevice) {
  EXPECT_EQ(host.read_idcode(0), 0xDEADBEEFu);
  EXPECT_EQ(host.read_idcode(1), 0x1A5CD001u);
}

TEST_F(JtagFixture, ResetSelectsIdcodeInstruction) {
  EXPECT_EQ(dev0.instruction(), jtag_ir::kIdcode);
  EXPECT_EQ(dev1.instruction(), jtag_ir::kIdcode);
}

TEST_F(JtagFixture, WriteRegisterThroughChain) {
  host.write_register(0, 0, 0x1234);
  EXPECT_EQ(regs0.read("gain"), 0x1234);
  // Device 1 untouched.
  EXPECT_EQ(regs1.read("mode"), 0x0002);
}

TEST_F(JtagFixture, ReadRegisterThroughChain) {
  regs1.write("mode", 0x0BEB);
  EXPECT_EQ(host.read_register(1, 0), 0x0BEB);
}

TEST_F(JtagFixture, ReadDoesNotDisturbRegister) {
  // kDataRd must not write back the shifted-in zeros.
  regs0.write("gain", 0x7777);
  (void)host.read_register(0, 0);
  EXPECT_EQ(regs0.read("gain"), 0x7777);
}

TEST_F(JtagFixture, StatusRegisterReadback) {
  regs0.post_status("status", 0xA5A5);
  EXPECT_EQ(host.read_register(0, 1), 0xA5A5);
}

TEST_F(JtagFixture, StatusRegisterWriteIgnored) {
  host.write_register(0, 1, 0x1111);
  EXPECT_EQ(regs0.read("status"), 0x0001);
}

TEST_F(JtagFixture, FullReadbackOfEveryRegister) {
  // Paper §4.2 reason (iv): full read-back capability. Write every config
  // register over JTAG, then read every register back and compare.
  host.write_register(0, 0, 0xCAFE);
  regs0.post_status("status", 0x0042);
  host.write_register(1, 0, 0x0007);
  EXPECT_EQ(host.read_register(0, 0), 0xCAFE);
  EXPECT_EQ(host.read_register(0, 1), 0x0042);
  EXPECT_EQ(host.read_register(1, 0), 0x0007);
}

TEST_F(JtagFixture, BypassIsOneBit) {
  // With dev0 in BYPASS and dev1 in IDCODE, a 33-bit shift returns dev1's
  // IDCODE delayed by exactly one bit.
  host.shift_ir({jtag_ir::kBypass, jtag_ir::kIdcode});
  const auto captured = host.shift_dr({0, 0}, {1, 32});
  EXPECT_EQ(static_cast<std::uint32_t>(captured[1]), 0x1A5CD001u);
}

TEST_F(JtagFixture, SimultaneousWritesToBothDevices) {
  host.shift_ir({jtag_ir::kAddr, jtag_ir::kAddr});
  host.shift_dr({0, 0}, {16, 16});
  host.shift_ir({jtag_ir::kDataWr, jtag_ir::kDataWr});
  host.shift_dr({0x1111, 0x2222}, {16, 16});
  EXPECT_EQ(regs0.read("gain"), 0x1111);
  EXPECT_EQ(regs1.read("mode"), 0x2222);
}

TEST(JtagSingle, DeviceAloneInChain) {
  RegisterFile regs;
  regs.define("r0", 0, RegKind::Config, 0xAB);
  JtagDevice dev(0x12345678, &regs);
  JtagChain chain;
  chain.add(&dev);
  JtagHost host(chain);
  host.reset();
  EXPECT_EQ(host.read_idcode(0), 0x12345678u);
  host.write_register(0, 0, 0x55AA);
  EXPECT_EQ(regs.read("r0"), 0x55AA);
  EXPECT_EQ(host.read_register(0, 0), 0x55AA);
}

}  // namespace
}  // namespace ascp::platform
