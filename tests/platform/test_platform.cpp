// McuSubsystem integration: CPU ↔ register fabric ↔ JTAG ↔ peripherals.
#include <gtest/gtest.h>

#include "mcu/assembler.hpp"
#include "platform/platform.hpp"

namespace ascp::platform {
namespace {

TEST(McuSubsystem, DefaultBlocksPresent) {
  McuSubsystem sys;
  EXPECT_NE(sys.spi(), nullptr);
  EXPECT_NE(sys.timer(), nullptr);
  EXPECT_NE(sys.watchdog(), nullptr);
  EXPECT_NE(sys.sram_trace(), nullptr);
}

TEST(McuSubsystem, OptionalBlocksCanBeOmitted) {
  PlatformConfig cfg;
  cfg.with_spi = false;
  cfg.with_sram_trace = false;
  McuSubsystem sys(cfg);
  EXPECT_EQ(sys.spi(), nullptr);
  EXPECT_EQ(sys.sram_trace(), nullptr);
  // Omitted blocks cost no area (the platform-vs-universal mechanism).
  McuSubsystem full;
  EXPECT_LT(sys.area().total_kgates(), full.area().total_kgates());
}

TEST(McuSubsystem, CyclesPerSampleAt20Mhz) {
  McuSubsystem sys;
  // 20 MHz / 12 = 1.667 M machine cycles/s; at 240 kHz DSP rate ≈ 7.
  EXPECT_EQ(sys.cycles_per_sample(240e3), 7);
  // At the 1.875 kHz decimated rate ≈ 889.
  EXPECT_NEAR(sys.cycles_per_sample(1875.0), 889, 1);
}

TEST(McuSubsystem, CpuReadsRegisterFileThroughBridge) {
  McuSubsystem sys;
  sys.regs().define("status", 5, RegKind::Status, 0);
  sys.regs().post_status("status", 0xC3A5);
  // Firmware reads word register 5 at regfile window (byte addr base+10).
  mcu::Assembler as;
  as.define("REGLO", static_cast<std::uint16_t>(sys.config().map.regfile + 10));
  as.define("REGHI", static_cast<std::uint16_t>(sys.config().map.regfile + 11));
  sys.load_firmware(as.assemble(R"(
    MOV DPTR,#REGLO
    MOVX A,@DPTR
    MOV 30h,A
    MOV DPTR,#REGHI
    MOVX A,@DPTR
    MOV 31h,A
    done: SJMP done
  )").image);
  sys.run_cpu(100);
  EXPECT_EQ(sys.cpu().iram(0x30), 0xA5);
  EXPECT_EQ(sys.cpu().iram(0x31), 0xC3);
}

TEST(McuSubsystem, CpuWritesConfigRegisterFiresHook) {
  McuSubsystem sys;
  std::uint16_t seen = 0;
  sys.regs().define("gain", 2, RegKind::Config, 0, [&](std::uint16_t v) { seen = v; });
  mcu::Assembler as;
  as.define("REGLO", static_cast<std::uint16_t>(sys.config().map.regfile + 4));
  sys.load_firmware(as.assemble(R"(
    MOV DPTR,#REGLO
    MOV A,#34h
    MOVX @DPTR,A
    INC DPTR
    MOV A,#12h
    MOVX @DPTR,A
    done: SJMP done
  )").image);
  sys.run_cpu(100);
  EXPECT_EQ(seen, 0x1234);
}

TEST(McuSubsystem, JtagAndCpuSeeTheSameRegisters) {
  McuSubsystem sys;
  sys.regs().define("trim", 7, RegKind::Config, 0);
  sys.jtag().reset();
  sys.jtag().write_register(0, 7, 0x0FAB);
  EXPECT_EQ(sys.regs().read("trim"), 0x0FAB);
  EXPECT_EQ(sys.jtag().read_register(0, 7), 0x0FAB);
}

TEST(McuSubsystem, WatchdogResetsHungCpu) {
  McuSubsystem sys;
  // Firmware counts its boots in XDATA (survives a CPU reset), enables the
  // watchdog, then hangs without kicking: every period the dog bites, the
  // CPU reboots, and the boot counter climbs.
  mcu::Assembler as;
  const auto wd = sys.config().map.watchdog;
  as.define("WDPERLO", static_cast<std::uint16_t>(wd + 2));
  as.define("WDCTLLO", static_cast<std::uint16_t>(wd + 4));
  sys.load_firmware(as.assemble(R"(
    MOV DPTR,#0      ; boot counter in XDATA RAM
    MOVX A,@DPTR
    INC A
    MOVX @DPTR,A
    MOV DPTR,#WDPERLO
    MOV A,#0E8h      ; period 1000
    MOVX @DPTR,A
    INC DPTR
    MOV A,#3
    MOVX @DPTR,A
    MOV DPTR,#WDCTLLO
    MOV A,#1         ; enable
    MOVX @DPTR,A
    INC DPTR
    CLR A
    MOVX @DPTR,A
    hang: SJMP hang
  )").image);
  sys.run_cpu(5200);
  // ~5 periods elapsed: at least three watchdog-induced reboots.
  EXPECT_GE(sys.bus().read(0), 4);
}

TEST(McuSubsystem, FirmwareCanReadSramTrace) {
  McuSubsystem sys;
  // DSP side captures three samples on node 0.
  sys.sram_trace()->write_reg(0, 3);  // reset + arm
  sys.sram_trace()->push(0, 0x1111);
  sys.sram_trace()->push(0, 0x2222);
  // CPU reads COUNT (reg 3) via the bridge window.
  mcu::Assembler as;
  as.define("CNTLO", static_cast<std::uint16_t>(sys.config().map.sram + 6));
  sys.load_firmware(as.assemble(R"(
    MOV DPTR,#CNTLO
    MOVX A,@DPTR
    MOV 30h,A
    done: SJMP done
  )").image);
  sys.run_cpu(100);
  EXPECT_EQ(sys.cpu().iram(0x30), 2);
}

TEST(McuSubsystem, HostLinkRoundTrip) {
  McuSubsystem sys;
  mcu::Assembler as;
  sys.load_firmware(as.assemble(R"(
    MOV SCON,#50h
    MOV TMOD,#20h
    MOV TH1,#0FFh
    SETB TR1
wait:
    JNB RI,wait
    MOV A,SBUF
    CLR RI
    ADD A,#1        ; echo incremented
    MOV SBUF,A
w2: JNB TI,w2
    CLR TI
    done: SJMP done
  )").image);
  sys.host().send(0x41);
  sys.run_cpu(2000);
  ASSERT_EQ(sys.host().received().size(), 1u);
  EXPECT_EQ(sys.host().received()[0], 0x42);
}

TEST(McuSubsystem, CachePresentInPrototypeConfig) {
  McuSubsystem proto;
  ASSERT_NE(proto.cache(), nullptr);
  PlatformConfig asic;
  asic.with_program_ram = false;  // 'ASIC' version: big ROM, no cache
  McuSubsystem rom_only(asic);
  EXPECT_EQ(rom_only.cache(), nullptr);
}

TEST(McuSubsystem, CpuReachesExternalRamThroughCache) {
  McuSubsystem sys;
  sys.cache()->load(0x2000, {0x42});
  mcu::Assembler as;
  sys.load_firmware(as.assemble(R"(
    MOV 0A1h,#0      ; CBANK
    MOV 0A2h,#20h    ; CAHI
    MOV 0A3h,#0      ; CALO
    MOV 30h,0A4h     ; CDATA -> iram
    done: SJMP done
  )").image);
  sys.run_cpu(100);
  EXPECT_EQ(sys.cpu().iram(0x30), 0x42);
  EXPECT_EQ(sys.cache()->misses(), 1);
}

TEST(McuSubsystem, AreaNearPaperComplexity) {
  // §4.3: "digital part of roughly 200 Kgates" — the full gyro
  // customization (subsystem + DSP IPs) must land in that region. The MCU
  // subsystem alone is a fraction of it.
  McuSubsystem sys;
  AreaModel m = sys.area();
  for (const char* ip : {"nco", "pll_loop", "agc_loop", "iq_mod", "compensation",
                         "biquad_bank", "chain_ctrl", "fir"})
    m.instantiate(ip);
  m.instantiate("iq_demod", 2);
  m.instantiate("cic_decim", 2);
  m.instantiate("jtag_tap", 1);  // second TAP: analog die
  EXPECT_NEAR(m.total_kgates(), 200.0, 30.0);
}

}  // namespace
}  // namespace ascp::platform
