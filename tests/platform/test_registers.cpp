#include <gtest/gtest.h>

#include "platform/registers.hpp"

namespace ascp::platform {
namespace {

TEST(RegisterFile, DefineAndReadBack) {
  RegisterFile rf;
  rf.define("gain", 0, RegKind::Config, 0x10);
  EXPECT_EQ(rf.read("gain"), 0x10);
  EXPECT_EQ(rf.read(0), 0x10);
}

TEST(RegisterFile, WriteFiresHook) {
  RegisterFile rf;
  std::uint16_t seen = 0;
  rf.define("gain", 0, RegKind::Config, 0, [&](std::uint16_t v) { seen = v; });
  rf.write("gain", 0x55);
  EXPECT_EQ(seen, 0x55);
  EXPECT_EQ(rf.read("gain"), 0x55);
}

TEST(RegisterFile, StatusWriteFromSoftwareThrows) {
  RegisterFile rf;
  rf.define("lock", 1, RegKind::Status);
  EXPECT_THROW(rf.write("lock", 1), std::logic_error);
}

TEST(RegisterFile, PostStatusUpdatesValue) {
  RegisterFile rf;
  rf.define("lock", 1, RegKind::Status);
  rf.post_status("lock", 1);
  EXPECT_EQ(rf.read("lock"), 1);
}

TEST(RegisterFile, DuplicateAddressRejected) {
  RegisterFile rf;
  rf.define("a", 0, RegKind::Config);
  EXPECT_THROW(rf.define("b", 0, RegKind::Config), std::invalid_argument);
}

TEST(RegisterFile, DuplicateNameRejected) {
  RegisterFile rf;
  rf.define("a", 0, RegKind::Config);
  EXPECT_THROW(rf.define("a", 1, RegKind::Config), std::invalid_argument);
}

TEST(RegisterFile, UnknownAccessThrows) {
  RegisterFile rf;
  EXPECT_THROW(rf.read("ghost"), std::out_of_range);
  EXPECT_THROW((void)rf.read(42), std::out_of_range);
}

TEST(RegisterFile, BridgeReadMatchesDirectRead) {
  RegisterFile rf;
  rf.define("cfg", 3, RegKind::Config, 0xBEEF);
  EXPECT_EQ(rf.read_reg(3), 0xBEEF);
}

TEST(RegisterFile, BridgeWriteToStatusIgnored) {
  RegisterFile rf;
  rf.define("st", 4, RegKind::Status, 0x11);
  rf.write_reg(4, 0x99);  // like hardware: silently ignored
  EXPECT_EQ(rf.read(4), 0x11);
}

TEST(RegisterFile, BridgeReadOfUnpopulatedIsAllOnes) {
  RegisterFile rf;
  EXPECT_EQ(rf.read_reg(200), 0xFFFF);
}

TEST(RegisterFile, DumpListsEverythingInAddressOrder) {
  RegisterFile rf;
  rf.define("z", 5, RegKind::Status, 7);
  rf.define("a", 1, RegKind::Config, 3);
  const auto d = rf.dump();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].name, "a");
  EXPECT_EQ(d[0].addr, 1);
  EXPECT_EQ(d[1].name, "z");
  EXPECT_EQ(d[1].value, 7);
}

}  // namespace
}  // namespace ascp::platform
