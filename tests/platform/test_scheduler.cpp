#include <gtest/gtest.h>

#include <vector>

#include "platform/scheduler.hpp"

namespace ascp::platform {
namespace {

TEST(Scheduler, BaseTaskRunsEveryTick) {
  Scheduler sched(1000.0);
  int count = 0;
  sched.every(1, [&] { ++count; });
  sched.run_ticks(100);
  EXPECT_EQ(count, 100);
}

TEST(Scheduler, DividedTaskRunsEveryNth) {
  Scheduler sched(1000.0);
  int fast = 0, slow = 0;
  sched.every(1, [&] { ++fast; });
  sched.every(8, [&] { ++slow; });
  sched.run_ticks(64);
  EXPECT_EQ(fast, 64);
  EXPECT_EQ(slow, 8);
}

TEST(Scheduler, OrderWithinTickIsRegistrationOrder) {
  Scheduler sched(1000.0);
  std::vector<int> order;
  sched.every(1, [&] { order.push_back(1); });
  sched.every(1, [&] { order.push_back(2); });
  sched.tick();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunSecondsConverts) {
  Scheduler sched(1.92e6);
  long count = 0;
  sched.every(1, [&] { ++count; });
  sched.run_seconds(0.001);
  EXPECT_EQ(count, 1920);
  EXPECT_NEAR(sched.now(), 0.001, 1e-9);
}

TEST(Scheduler, InvalidDividerThrows) {
  Scheduler sched(1000.0);
  EXPECT_THROW(sched.every(0, [] {}), std::invalid_argument);
}

TEST(Scheduler, FirstTickFiresAllTasks) {
  Scheduler sched(100.0);
  int hits = 0;
  sched.every(50, [&] { ++hits; });
  sched.tick();
  EXPECT_EQ(hits, 1);  // tick 0 is a multiple of every divider
}

TEST(Scheduler, TimeAccountingMatchesTicks) {
  Scheduler sched(240e3);
  sched.run_ticks(240);
  EXPECT_NEAR(sched.now(), 0.001, 1e-12);
  EXPECT_EQ(sched.ticks(), 240);
  EXPECT_DOUBLE_EQ(sched.dt(), 1.0 / 240e3);
}

}  // namespace
}  // namespace ascp::platform
