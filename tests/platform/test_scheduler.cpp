#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "obs/profile.hpp"
#include "platform/scheduler.hpp"

namespace ascp::platform {
namespace {

TEST(Scheduler, BaseTaskRunsEveryTick) {
  Scheduler sched(1000.0);
  int count = 0;
  sched.every(1, [&] { ++count; });
  sched.run_ticks(100);
  EXPECT_EQ(count, 100);
}

TEST(Scheduler, DividedTaskRunsEveryNth) {
  Scheduler sched(1000.0);
  int fast = 0, slow = 0;
  sched.every(1, [&] { ++fast; });
  sched.every(8, [&] { ++slow; });
  sched.run_ticks(64);
  EXPECT_EQ(fast, 64);
  EXPECT_EQ(slow, 8);
}

TEST(Scheduler, OrderWithinTickIsRegistrationOrder) {
  Scheduler sched(1000.0);
  std::vector<int> order;
  sched.every(1, [&] { order.push_back(1); });
  sched.every(1, [&] { order.push_back(2); });
  sched.tick();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunSecondsConverts) {
  Scheduler sched(1.92e6);
  long count = 0;
  sched.every(1, [&] { ++count; });
  sched.run_seconds(0.001);
  EXPECT_EQ(count, 1920);
  EXPECT_NEAR(sched.now(), 0.001, 1e-9);
}

TEST(Scheduler, InvalidDividerThrows) {
  Scheduler sched(1000.0);
  EXPECT_THROW(sched.every(0, [] {}), std::invalid_argument);
}

TEST(Scheduler, FirstTickFiresAllTasks) {
  Scheduler sched(100.0);
  int hits = 0;
  sched.every(50, [&] { ++hits; });
  sched.tick();
  EXPECT_EQ(hits, 1);  // tick 0 is a multiple of every divider
}

TEST(Scheduler, TimeAccountingMatchesTicks) {
  Scheduler sched(240e3);
  sched.run_ticks(240);
  EXPECT_NEAR(sched.now(), 0.001, 1e-12);
  EXPECT_EQ(sched.ticks(), 240);
  EXPECT_DOUBLE_EQ(sched.dt(), 1.0 / 240e3);
}

TEST(Scheduler, RegistrationOrderHoldsAcrossMixedDividers) {
  // Within one tick every due task fires in registration order, regardless
  // of divider — the engine relies on this for its analog → sample → DSP →
  // supervisor → output pipeline ordering.
  Scheduler sched(1000.0);
  std::vector<int> order;
  sched.every(4, [&] { order.push_back(1); });
  sched.every(1, [&] { order.push_back(2); });
  sched.every(2, [&] { order.push_back(3); });
  sched.run_ticks(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3,  // tick 0: all due
                                     2,        // tick 1
                                     2, 3,     // tick 2
                                     2}));     // tick 3
}

TEST(Scheduler, RunSecondsRoundsHalfUpToNearestTick) {
  // run_seconds() rounds seconds*base_rate to the nearest tick (half-up),
  // the same convention the pre-refactor loops used — so a 0.9999-tick
  // request runs one tick and a 0.4-tick request runs none.
  Scheduler sched(1000.0);
  long count = 0;
  sched.every(1, [&] { ++count; });
  sched.run_seconds(0.0004);  // 0.4 ticks -> 0
  EXPECT_EQ(count, 0);
  sched.run_seconds(0.0005);  // 0.5 ticks -> 1 (half rounds up)
  EXPECT_EQ(count, 1);
  sched.run_seconds(0.0034999);  // 3.4999 ticks -> 3
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, PhaseOffsetShiftsFiring) {
  Scheduler sched(1000.0);
  std::vector<long> fired_at;
  sched.every(8, 7, [&] { fired_at.push_back(sched.ticks()); });
  sched.run_ticks(24);
  EXPECT_EQ(fired_at, (std::vector<long>{7, 15, 23}));
}

TEST(Scheduler, PhasePersistsAcrossRunCalls) {
  // A divider-8 phase-7 task keeps its alignment across run_* boundaries
  // that are not divider multiples (the baseline channel depends on this).
  Scheduler sched(1000.0);
  long count = 0;
  sched.every(8, 7, [&] { ++count; });
  sched.run_ticks(11);  // fires at tick 7
  EXPECT_EQ(count, 1);
  sched.run_ticks(5);   // ticks 11..15: fires at 15
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, InvalidPhaseThrows) {
  Scheduler sched(1000.0);
  EXPECT_THROW(sched.every(8, 8, [] {}), std::invalid_argument);
  EXPECT_THROW(sched.every(8, -1, [] {}), std::invalid_argument);
  EXPECT_THROW(sched.every(0, 0, [] {}), std::invalid_argument);
}

TEST(Scheduler, ProfilerCountsInvocationsPerTask) {
  Scheduler sched(1000.0);
  long fast = 0, slow = 0;
  sched.every(1, [&] { ++fast; }, "fast");
  obs::TaskProfiler prof;
  sched.set_profiler(&prof);  // attach after one registration…
  sched.every(8, 7, [&] { ++slow; }, "slow");  // …and register one while attached
  EXPECT_DOUBLE_EQ(prof.base_rate(), 1000.0);
  sched.run_ticks(64);

  EXPECT_EQ(fast, 64);
  EXPECT_EQ(slow, 8);
  ASSERT_EQ(prof.task_count(), 2u);
  const auto& stats = prof.stats();
  EXPECT_EQ(stats[0].name, "fast");
  EXPECT_EQ(stats[0].invocations, 64u);
  EXPECT_EQ(stats[0].divider, 1);
  EXPECT_EQ(stats[1].name, "slow");
  EXPECT_EQ(stats[1].invocations, 8u);
  EXPECT_EQ(stats[1].divider, 8);
  EXPECT_EQ(stats[1].phase, 7);
  EXPECT_GE(stats[0].wall_seconds, 0.0);
  // One slice per invocation, on the scheduler's tick axis.
  EXPECT_EQ(prof.slices().size(), 72u);
  EXPECT_EQ(prof.slices_dropped(), 0u);
}

TEST(Scheduler, ProfilerDoesNotChangeFiringPattern) {
  // Same tasks, one scheduler profiled and one not: identical firing order.
  const auto firing_log = [](bool profiled) {
    Scheduler sched(1000.0);
    obs::TaskProfiler prof;
    std::vector<std::pair<char, long>> log;
    sched.every(2, [&] { log.emplace_back('a', sched.ticks()); }, "a");
    sched.every(8, 7, [&] { log.emplace_back('b', sched.ticks()); }, "b");
    if (profiled) sched.set_profiler(&prof);
    sched.run_ticks(32);
    return log;
  };
  EXPECT_EQ(firing_log(false), firing_log(true));
}

TEST(Scheduler, ProfilerDetachStopsRecording) {
  Scheduler sched(1000.0);
  obs::TaskProfiler prof;
  sched.every(1, [] {}, "t");
  sched.set_profiler(&prof);
  sched.run_ticks(10);
  sched.set_profiler(nullptr);
  sched.run_ticks(10);
  ASSERT_EQ(prof.task_count(), 1u);
  EXPECT_EQ(prof.stats()[0].invocations, 10u);  // only the attached window
}

}  // namespace
}  // namespace ascp::platform
