// Self-test suite: passes on a healthy platform, detects injected faults,
// and leaves configuration untouched.
#include <gtest/gtest.h>

#include "platform/registers.hpp"
#include "platform/selftest.hpp"

namespace ascp::platform {
namespace {

McuSubsystem make_sys() {
  McuSubsystem sys;
  sys.regs().define("cfg_a", 0, RegKind::Config, 0x1234);
  sys.regs().define("cfg_b", 1, RegKind::Config, 0x00FF);
  sys.regs().define("st_a", 8, RegKind::Status, 0x0042);
  return sys;
}

TEST(SelfTest, HealthyPlatformPasses) {
  auto sys = make_sys();
  const auto result = run_self_test(sys);
  EXPECT_TRUE(result.all_passed()) << result.report();
}

TEST(SelfTest, RunsAllFiveChecks) {
  auto sys = make_sys();
  const auto result = run_self_test(sys);
  EXPECT_EQ(result.checks.size(), 5u);
}

TEST(SelfTest, RestoresConfigValues) {
  auto sys = make_sys();
  sys.regs().write("cfg_a", 0xCAFE);
  (void)run_self_test(sys);
  EXPECT_EQ(sys.regs().read("cfg_a"), 0xCAFE);
  EXPECT_EQ(sys.regs().read("cfg_b"), 0x00FF);
}

TEST(SelfTest, PreservesStatusValues) {
  auto sys = make_sys();
  sys.regs().post_status("st_a", 0x77);
  (void)run_self_test(sys);
  EXPECT_EQ(sys.regs().read("st_a"), 0x77);
}

TEST(SelfTest, ReportNamesEveryCheck) {
  auto sys = make_sys();
  const auto text = run_self_test(sys).report();
  for (const char* needle : {"jtag idcode", "walking bits", "write protection",
                             "bridge", "sram"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(text.find("PASSED"), std::string::npos);
}

TEST(SelfTest, DetectsStuckRegisterBit) {
  // Fault injection: the write hook rewrites the stored value with bit 0
  // tied to ground — the walking-bit pattern must catch it.
  McuSubsystem sys;
  sys.regs().define("stuck0", 3, RegKind::Config, 0, [&sys](std::uint16_t v) {
    sys.regs().post_status(3, v & 0xFFFE);
  });
  const auto result = run_self_test(sys);
  EXPECT_FALSE(result.all_passed());
  bool found = false;
  for (const auto& c : result.checks)
    if (!c.passed && c.name.find("walking") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ascp::platform
