// Self-test suite: passes on a healthy platform, detects injected faults,
// and leaves configuration untouched.
#include <gtest/gtest.h>

#include "platform/registers.hpp"
#include "platform/selftest.hpp"

namespace ascp::platform {
namespace {

McuSubsystem make_sys() {
  McuSubsystem sys;
  sys.regs().define("cfg_a", 0, RegKind::Config, 0x1234);
  sys.regs().define("cfg_b", 1, RegKind::Config, 0x00FF);
  sys.regs().define("st_a", 8, RegKind::Status, 0x0042);
  return sys;
}

TEST(SelfTest, HealthyPlatformPasses) {
  auto sys = make_sys();
  const auto result = run_self_test(sys);
  EXPECT_TRUE(result.all_passed()) << result.report();
}

TEST(SelfTest, RunsAllFiveChecks) {
  auto sys = make_sys();
  const auto result = run_self_test(sys);
  EXPECT_EQ(result.checks.size(), 5u);
}

TEST(SelfTest, RestoresConfigValues) {
  auto sys = make_sys();
  sys.regs().write("cfg_a", 0xCAFE);
  (void)run_self_test(sys);
  EXPECT_EQ(sys.regs().read("cfg_a"), 0xCAFE);
  EXPECT_EQ(sys.regs().read("cfg_b"), 0x00FF);
}

TEST(SelfTest, PreservesStatusValues) {
  auto sys = make_sys();
  sys.regs().post_status("st_a", 0x77);
  (void)run_self_test(sys);
  EXPECT_EQ(sys.regs().read("st_a"), 0x77);
}

TEST(SelfTest, ReportNamesEveryCheck) {
  auto sys = make_sys();
  const auto text = run_self_test(sys).report();
  for (const char* needle : {"jtag idcode", "walking bits", "write protection",
                             "bridge", "sram"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(text.find("PASSED"), std::string::npos);
}

TEST(SelfTest, ReportHasSummaryLine) {
  auto sys = make_sys();
  const auto text = run_self_test(sys).report();
  EXPECT_NE(text.find("5/5 checks passed"), std::string::npos) << text;
  EXPECT_NE(text.find("self-test PASSED"), std::string::npos) << text;
}

TEST(SelfTest, FailedReportCountsFailures) {
  McuSubsystem sys;
  sys.regs().define("stuck0", 3, RegKind::Config, 0, [&sys](std::uint16_t v) {
    sys.regs().post_status(3, v & 0xFFFE);
  });
  const auto text = run_self_test(sys).report();
  EXPECT_NE(text.find("4/5 checks passed"), std::string::npos) << text;
  EXPECT_NE(text.find("self-test FAILED"), std::string::npos) << text;
}

TEST(SelfTest, RuntimeIdempotent) {
  // The watchdog-recovery path re-runs the suite on a live platform, so a
  // second back-to-back invocation must leave every register (including the
  // timer scratch word and the SRAM trace configuration) exactly as the
  // first run left it.
  auto sys = make_sys();
  // Dirty the peripherals the suite exercises, as a live chain would.
  sys.bus().write_word(sys.config().map.timer, 0x1357);
  sys.sram_trace()->write_reg(1, 2);  // trace node 2
  sys.sram_trace()->write_reg(2, 8);  // decimate by 8
  sys.sram_trace()->write_reg(0, 3);  // armed capture in flight

  const auto first = run_self_test(sys);
  ASSERT_TRUE(first.all_passed()) << first.report();
  auto snap_regs = sys.regs().dump();
  const auto snap_timer = sys.bus().read_word(sys.config().map.timer);
  const std::uint16_t snap_node = sys.sram_trace()->read_reg(1);
  const std::uint16_t snap_decim = sys.sram_trace()->read_reg(2);
  const std::uint16_t snap_status = sys.sram_trace()->read_reg(6);

  const auto second = run_self_test(sys);
  EXPECT_TRUE(second.all_passed()) << second.report();
  const auto regs_after = sys.regs().dump();
  ASSERT_EQ(regs_after.size(), snap_regs.size());
  for (std::size_t i = 0; i < regs_after.size(); ++i) {
    EXPECT_EQ(regs_after[i].value, snap_regs[i].value)
        << "register '" << regs_after[i].name << "' drifted between runs";
  }
  EXPECT_EQ(sys.bus().read_word(sys.config().map.timer), snap_timer);
  EXPECT_EQ(sys.sram_trace()->read_reg(1), snap_node);
  EXPECT_EQ(sys.sram_trace()->read_reg(2), snap_decim);
  EXPECT_EQ(sys.sram_trace()->read_reg(6), snap_status);
}

TEST(SelfTest, DetectsStuckRegisterBit) {
  // Fault injection: the write hook rewrites the stored value with bit 0
  // tied to ground — the walking-bit pattern must catch it.
  McuSubsystem sys;
  sys.regs().define("stuck0", 3, RegKind::Config, 0, [&sys](std::uint16_t v) {
    sys.regs().post_status(3, v & 0xFFFE);
  });
  const auto result = run_self_test(sys);
  EXPECT_FALSE(result.all_passed());
  bool found = false;
  for (const auto& c : result.checks)
    if (!c.passed && c.name.find("walking") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ascp::platform
