// EEPROM calibration record: CRC primitives, store/load roundtrip through
// the SPI master register interface, corruption detection.
#include <gtest/gtest.h>

#include "mcu/spi.hpp"
#include "safety/cal_store.hpp"

namespace ascp::safety {
namespace {

dsp::CompensationCoeffs sample_coeffs() {
  dsp::CompensationCoeffs c;
  c.offset[0] = 2.5;
  c.offset[1] = -1.25e-3;
  c.offset[2] = 4.0e-6;
  c.s0 = 0.8;
  c.s1 = 1.5e-4;
  c.s2 = -2.0e-7;
  return c;
}

TEST(CalStore, Crc16CcittKnownVector) {
  // The classic check value: CRC16-CCITT-FALSE("123456789") = 0x29B1.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg, sizeof msg), 0x29B1);
}

TEST(CalStore, FreshEepromReportsMissing) {
  mcu::SpiEeprom ee;
  mcu::SpiMaster spi;
  spi.connect(&ee);
  const auto rec = load_calibration(spi);
  EXPECT_EQ(rec.status, CalRecord::Status::Missing);
  EXPECT_TRUE(audit_calibration(spi)) << "a blank part is not a fault";
}

TEST(CalStore, StoreLoadRoundtrip) {
  mcu::SpiEeprom ee;
  mcu::SpiMaster spi;
  spi.connect(&ee);
  const auto c = sample_coeffs();
  store_calibration(spi, c);

  const auto rec = load_calibration(spi);
  ASSERT_EQ(rec.status, CalRecord::Status::Ok);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(rec.coeffs.offset[i], c.offset[i]) << "offset[" << i << "]";
  EXPECT_DOUBLE_EQ(rec.coeffs.s0, c.s0);
  EXPECT_DOUBLE_EQ(rec.coeffs.s1, c.s1);
  EXPECT_DOUBLE_EQ(rec.coeffs.s2, c.s2);
  EXPECT_TRUE(audit_calibration(spi));
}

TEST(CalStore, RewriteReplacesRecord) {
  mcu::SpiEeprom ee;
  mcu::SpiMaster spi;
  spi.connect(&ee);
  store_calibration(spi, sample_coeffs());
  auto c2 = sample_coeffs();
  c2.offset[0] = 2.501;
  store_calibration(spi, c2);
  const auto rec = load_calibration(spi);
  ASSERT_EQ(rec.status, CalRecord::Status::Ok);
  EXPECT_DOUBLE_EQ(rec.coeffs.offset[0], 2.501);
}

TEST(CalStore, CorruptionDetectedByCrc) {
  mcu::SpiEeprom ee;
  mcu::SpiMaster spi;
  spi.connect(&ee);
  store_calibration(spi, sample_coeffs());
  ee.corrupt(kCalEepromAddr + 10, 0x40);  // single bit flip in a coefficient
  const auto rec = load_calibration(spi);
  EXPECT_EQ(rec.status, CalRecord::Status::Corrupt);
  EXPECT_FALSE(audit_calibration(spi));
}

TEST(CalStore, CorruptedMagicReadsAsMissing) {
  mcu::SpiEeprom ee;
  mcu::SpiMaster spi;
  spi.connect(&ee);
  store_calibration(spi, sample_coeffs());
  ee.corrupt(kCalEepromAddr, 0xFF);
  EXPECT_EQ(load_calibration(spi).status, CalRecord::Status::Missing);
}

}  // namespace
}  // namespace ascp::safety
