// FaultCampaign unit tests: exact-sample firing, transient auto-clear,
// replay rearming.
#include <gtest/gtest.h>

#include "safety/fault_injection.hpp"

namespace ascp::safety {
namespace {

TEST(FaultCampaign, FiresExactlyAtRequestedSample) {
  FaultCampaign fc;
  long fired_at = -1;
  long now = 0;
  fc.add({"f", FaultLayer::Afe, 100}, [&] { fired_at = now; });
  for (now = 1; now <= 200; ++now) fc.step(now);
  EXPECT_EQ(fired_at, 100);
}

TEST(FaultCampaign, FiresOnlyOnce) {
  FaultCampaign fc;
  int count = 0;
  fc.add({"f", FaultLayer::Sensor, 10}, [&] { ++count; });
  for (long i = 1; i <= 50; ++i) fc.step(i);
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(fc.entries()[0].injected);
}

TEST(FaultCampaign, LateStartStillFires) {
  // The campaign keys on "sample ≥ inject_at", so a coarse-stepped caller
  // that skips the exact index still fires the fault.
  FaultCampaign fc;
  int count = 0;
  fc.add({"f", FaultLayer::Dsp, 100}, [&] { ++count; });
  fc.step(97);
  EXPECT_EQ(count, 0);
  fc.step(103);
  EXPECT_EQ(count, 1);
}

TEST(FaultCampaign, TransientFaultAutoClears) {
  FaultCampaign fc;
  bool active = false;
  FaultSpec spec{"t", FaultLayer::Afe, 50};
  spec.clear_after = 20;
  fc.add(spec, [&] { active = true; }, [&] { active = false; });
  for (long i = 1; i <= 69; ++i) fc.step(i);
  EXPECT_TRUE(active);
  fc.step(70);  // inject_at + clear_after
  EXPECT_FALSE(active);
  EXPECT_TRUE(fc.entries()[0].cleared);
}

TEST(FaultCampaign, PermanentFaultNeverClears) {
  FaultCampaign fc;
  bool active = false;
  fc.add({"p", FaultLayer::Mcu, 5}, [&] { active = true; },
         [&] { active = false; });
  for (long i = 1; i <= 100000; ++i) fc.step(i);
  EXPECT_TRUE(active);
  EXPECT_FALSE(fc.entries()[0].cleared);
}

TEST(FaultCampaign, RearmAllowsReplay) {
  FaultCampaign fc;
  int count = 0;
  fc.add({"f", FaultLayer::Sensor, 10}, [&] { ++count; });
  for (long i = 1; i <= 20; ++i) fc.step(i);
  ASSERT_EQ(count, 1);
  fc.rearm();
  EXPECT_FALSE(fc.entries()[0].injected);
  for (long i = 1; i <= 20; ++i) fc.step(i);
  EXPECT_EQ(count, 2);
}

TEST(FaultCampaign, LayerNames) {
  EXPECT_STREQ(fault_layer_name(FaultLayer::Sensor), "sensor");
  EXPECT_STREQ(fault_layer_name(FaultLayer::Afe), "afe");
  EXPECT_STREQ(fault_layer_name(FaultLayer::Dsp), "dsp");
  EXPECT_STREQ(fault_layer_name(FaultLayer::Mcu), "mcu");
}

}  // namespace
}  // namespace ascp::safety
