// End-to-end fault detection and recovery on a live GyroSystem: the
// supervisor rides along with the conditioning chain, faults are injected by
// a campaign, and the recovery paths (quiet recovery, watchdog reboot)
// restore a locked, NOMINAL system. Ideal fidelity keeps the runs fast.
#include <gtest/gtest.h>

#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"
#include "safety/standard_faults.hpp"

namespace ascp::core {
namespace {

using safety::SafetyState;

GyroSystemConfig safety_config() {
  auto cfg = default_gyro_system(Fidelity::Ideal);
  cfg.with_safety = true;
  return cfg;
}

void run_for(GyroSystem& g, double seconds, double rate_dps = 0.0) {
  g.run(sensor::Profile::constant(rate_dps), sensor::Profile::constant(25.0),
        seconds, nullptr);
}

TEST(FaultRecovery, NominalRunLatchesNothing) {
  GyroSystem gyro(safety_config());
  gyro.power_on(1);
  run_for(gyro, 1.0, 30.0);
  ASSERT_NE(gyro.supervisor(), nullptr);
  EXPECT_TRUE(gyro.supervisor()->armed());
  EXPECT_EQ(gyro.supervisor()->dtcs(), 0)
      << safety::describe_dtcs(gyro.supervisor()->dtcs());
  EXPECT_EQ(gyro.supervisor()->state(), SafetyState::Nominal);
}

TEST(FaultRecovery, SupervisorDoesNotPerturbNominalOutput) {
  // The safety path must be numerically invisible until a monitor trips:
  // same seed with and without the supervisor ⇒ bit-identical outputs.
  GyroSystem plain(default_gyro_system(Fidelity::Ideal));
  GyroSystem supervised(safety_config());
  plain.power_on(7);
  supervised.power_on(7);
  std::vector<double> a, b;
  plain.run(sensor::Profile::constant(75.0), sensor::Profile::constant(25.0), 0.5, &a);
  supervised.run(sensor::Profile::constant(75.0), sensor::Profile::constant(25.0), 0.5, &b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
}

TEST(FaultRecovery, NcoPhaseJumpDetectedAndRecovered) {
  GyroSystem gyro(safety_config());
  gyro.power_on(1);
  run_for(gyro, 0.7);
  ASSERT_TRUE(gyro.supervisor()->armed());

  safety::FaultCampaign campaign;
  const long inject_at = gyro.dsp_samples() + 1000;
  safety::faults::add_nco_phase_jump(campaign, gyro, inject_at);
  gyro.set_fault_campaign(&campaign);
  run_for(gyro, 1.5);

  auto* sup = gyro.supervisor();
  ASSERT_NE(sup, nullptr);
  EXPECT_NE(sup->dtcs() & safety::kDtcPllUnlock, 0)
      << safety::describe_dtcs(sup->dtcs());
  const long latched = sup->first_latch_fast(safety::kDtcPllUnlock);
  ASSERT_GT(latched, inject_at);
  EXPECT_LT(latched - inject_at, 48000) << "detection latency > 200 ms";
  // The loop re-acquires on its own (the phase jump is a transient): state
  // walks back to NOMINAL while the DTC stays latched for the service tool.
  EXPECT_TRUE(gyro.locked());
  EXPECT_EQ(sup->state(), SafetyState::Nominal);
  EXPECT_GT(sup->nominal_return_fast(), latched);
}

TEST(FaultRecovery, WatchdogHangRecoversEndToEnd) {
  auto cfg = safety_config();
  cfg.with_mcu = true;
  GyroSystem gyro(cfg);

  // Firmware: kick the watchdog forever (low byte, then high byte commits
  // the 0x5A5A kick word).
  mcu::Assembler as;
  as.define("WDKICK", gyro.platform().config().map.watchdog);
  gyro.platform().load_firmware(as.assemble(R"(
loop:   MOV DPTR,#WDKICK
        MOV A,#5Ah
        MOVX @DPTR,A
        INC DPTR
        MOVX @DPTR,A
        SJMP loop
  )").image);
  gyro.power_on(1);

  auto* wd = gyro.platform().watchdog();
  ASSERT_NE(wd, nullptr);
  wd->write_reg(1, 30000);  // period: 1.5 ms of CPU cycles at 20 MHz
  wd->write_reg(2, 1);      // enable

  // Healthy firmware keeps the watchdog fed through loop settle.
  run_for(gyro, 0.7);
  ASSERT_TRUE(gyro.supervisor()->armed());
  ASSERT_FALSE(wd->bitten());
  ASSERT_EQ(gyro.supervisor()->dtcs(), 0)
      << safety::describe_dtcs(gyro.supervisor()->dtcs());

  // Hang the firmware: kicks stop, the watchdog bites, the reset hook runs
  // the recovery pipeline (self-test → cal replay → loop re-acquisition).
  safety::FaultCampaign campaign;
  safety::faults::add_firmware_hang(campaign, gyro, gyro.dsp_samples() + 1000);
  gyro.set_fault_campaign(&campaign);
  run_for(gyro, 1.5);

  auto* sup = gyro.supervisor();
  EXPECT_NE(sup->dtcs() & safety::kDtcWatchdogBite, 0)
      << safety::describe_dtcs(sup->dtcs());
  EXPECT_EQ(sup->dtcs() & safety::kDtcSelfTest, 0) << "self-test must pass";
  EXPECT_FALSE(wd->bitten()) << "recovery must re-arm the watchdog";
  EXPECT_FALSE(gyro.platform().cpu().jammed()) << "reset clears the hang";
  EXPECT_TRUE(gyro.locked()) << "drive loop must re-acquire";
  EXPECT_EQ(sup->state(), SafetyState::Nominal) << "recovered to NOMINAL";
  EXPECT_GT(sup->nominal_return_fast(), 0);
}

TEST(FaultRecovery, RegisterScrubRepairsBitFlip) {
  GyroSystem gyro(safety_config());
  gyro.power_on(1);
  run_for(gyro, 0.7);
  ASSERT_TRUE(gyro.supervisor()->armed());
  const std::uint16_t good = gyro.regs().read(reg::kSenseGain);

  // SEU behind the datapath's back; the periodic scrub must latch
  // CFG_CORRUPT and write the shadow value back through the normal path.
  gyro.regs().corrupt(reg::kSenseGain, 0x80);
  ASSERT_NE(gyro.regs().read(reg::kSenseGain), good);
  run_for(gyro, 0.1);

  EXPECT_NE(gyro.supervisor()->dtcs() & safety::kDtcCfgCorrupt, 0)
      << safety::describe_dtcs(gyro.supervisor()->dtcs());
  EXPECT_EQ(gyro.regs().read(reg::kSenseGain), good);
}

TEST(FaultRecovery, EepromCorruptionCaughtByAudit) {
  auto cfg = safety_config();
  cfg.with_mcu = true;  // the EEPROM lives in the MCU subsystem
  GyroSystem gyro(cfg);
  gyro.power_on(1);
  // Write a valid record first, then flip a bit in it mid-run.
  safety::store_calibration(*gyro.platform().spi(), gyro.config().comp);
  safety::FaultCampaign campaign;
  safety::faults::add_eeprom_cal_corruption(campaign, gyro, 120000);
  gyro.set_fault_campaign(&campaign);
  run_for(gyro, 1.0);
  EXPECT_NE(gyro.supervisor()->dtcs() & safety::kDtcCalCrc, 0)
      << safety::describe_dtcs(gyro.supervisor()->dtcs());
}

}  // namespace
}  // namespace ascp::core
