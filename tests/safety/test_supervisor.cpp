// SafetySupervisor unit tests: monitors driven with synthetic fast/slow
// samples, small trip counts so each scenario runs in microseconds. The
// nominal scenarios double as the zero-false-positive requirement.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/registers.hpp"
#include "safety/supervisor.hpp"

namespace ascp::safety {
namespace {

/// Shrunken debounce windows so tests stay fast while still exercising the
/// counter logic (one-below-trip must not latch, at-trip must).
SupervisorConfig small_cfg() {
  SupervisorConfig cfg;
  cfg.adc_stuck_samples = 8;
  cfg.fast_trip_samples = 6;
  cfg.unlock_trip_samples = 10;
  cfg.escalate_slow = 3;
  cfg.recover_slow = 4;
  cfg.scrub_interval_slow = 4;
  cfg.audit_interval_slow = 8;
  cfg.arm_settle_samples = 10;
  return cfg;
}

/// A healthy locked-and-settled fast sample; the ADC values dither so the
/// stuck detectors see a live signal.
FastSample nominal_fast(long i) {
  FastSample s;
  s.primary_adc_v = 0.8 * std::sin(0.39 * static_cast<double>(i));
  s.sense_adc_v = 0.01 * std::sin(0.11 * static_cast<double>(i));
  s.pll_locked = true;
  s.loop_settled = true;
  s.agc_gain = 1.2;
  s.amplitude = 1.0;
  s.control_v = 0.1;
  return s;
}

SlowSample nominal_slow() {
  SlowSample s;
  s.rate_v = 2.5;
  s.quad_v = 0.0;
  s.temp_c = 25.0;
  return s;
}

/// Arm the supervisor with one settled sample plus a short nominal run.
void arm(SafetySupervisor& sup, int warm = 20) {
  for (int i = 0; i < warm; ++i) sup.on_fast(nominal_fast(i));
  ASSERT_TRUE(sup.armed());
}

TEST(Supervisor, BlindUntilSustainedSettle) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  // Start-up transients: unlocked, zero amplitude, railed AGC — all nominal
  // before the first settle.
  FastSample s;
  s.pll_locked = false;
  s.loop_settled = false;
  s.agc_gain = 2.4;
  s.amplitude = 0.0;
  for (int i = 0; i < 500; ++i) sup.on_fast(s);
  EXPECT_FALSE(sup.armed());
  EXPECT_EQ(sup.dtcs(), 0);
  // A settle blip shorter than the arming window must not arm.
  for (int i = 0; i < cfg.arm_settle_samples - 1; ++i) sup.on_fast(nominal_fast(i));
  sup.on_fast(s);
  EXPECT_FALSE(sup.armed());
  // A sustained settle does.
  for (int i = 0; i < cfg.arm_settle_samples; ++i) sup.on_fast(nominal_fast(i));
  EXPECT_TRUE(sup.armed());
}

TEST(Supervisor, RebaselinesGainOnSustainedResettle) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  arm(sup);  // baseline gain 1.2
  // The loop unsettles and re-settles at 1.5 — a legitimate new operating
  // point within the old baseline's tolerance, so no latch on the way.
  for (int i = 0; i < 5; ++i) {
    FastSample s = nominal_fast(i);
    s.loop_settled = false;
    s.agc_gain = 1.5;
    sup.on_fast(s);
  }
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.agc_gain = 1.5;
    sup.on_fast(s);
  }
  // 1.9 is anomalous against the old 1.2 baseline (|Δ| = 0.7 > 0.42) but
  // fine against the re-captured 1.5 one (0.4 < 0.525): must stay quiet.
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.agc_gain = 1.9;
    sup.on_fast(s);
  }
  EXPECT_EQ(sup.dtcs() & kDtcGainAnomaly, 0) << describe_dtcs(sup.dtcs());
  // 0.8 is anomalous against the new baseline: must latch.
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.agc_gain = 0.8;
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcGainAnomaly, 0);
}

TEST(Supervisor, NominalRunLatchesNothing) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 4000; ++i) {
    sup.on_fast(nominal_fast(i));
    if (i % 128 == 0) {
      const auto d = sup.on_slow(nominal_slow());
      EXPECT_FALSE(d.output_forced);
      EXPECT_DOUBLE_EQ(d.output_v, 2.5);
    }
  }
  EXPECT_EQ(sup.dtcs(), 0) << describe_dtcs(sup.dtcs());
  EXPECT_EQ(sup.state(), SafetyState::Nominal);
}

TEST(Supervisor, PrimaryAdcStuckLatches) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  arm(sup);
  FastSample s = nominal_fast(0);
  s.primary_adc_v = 0.7;  // frozen code on a live carrier channel
  // First repeat-free sample resets the counter, then adc_stuck_samples
  // identical codes are needed — one fewer must not latch.
  for (int i = 0; i < cfg.adc_stuck_samples; ++i) sup.on_fast(s);
  EXPECT_EQ(sup.dtcs() & kDtcAdcStuck, 0);
  sup.on_fast(s);
  EXPECT_NE(sup.dtcs() & kDtcAdcStuck, 0);
  EXPECT_EQ(sup.state(), SafetyState::Degraded);
  EXPECT_GT(sup.first_latch_fast(kDtcAdcStuck), 0);
}

TEST(Supervisor, SenseStuckAtNullIsUndetectableByDesign) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 500; ++i) {
    FastSample s = nominal_fast(i);
    s.sense_adc_v = 0.0;  // indistinguishable from a perfectly nulled loop
    sup.on_fast(s);
  }
  EXPECT_EQ(sup.dtcs(), 0);
}

TEST(Supervisor, SenseStuckAtRailLatches) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 500; ++i) {
    FastSample s = nominal_fast(i);
    s.sense_adc_v = 2.5;  // pinned at the reference rail
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcAdcStuck, 0);
}

TEST(Supervisor, UnlockBlipDoesNotLatch) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  arm(sup);
  for (int i = 0; i < cfg.unlock_trip_samples - 1; ++i) {
    FastSample bad = nominal_fast(i);
    bad.pll_locked = false;
    sup.on_fast(bad);
  }
  for (long i = 0; i < 100; ++i) sup.on_fast(nominal_fast(i));
  EXPECT_EQ(sup.dtcs(), 0);
}

TEST(Supervisor, SustainedUnlockLatches) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  arm(sup);
  for (int i = 0; i < cfg.unlock_trip_samples + 1; ++i) {
    FastSample bad = nominal_fast(i);
    bad.pll_locked = false;
    sup.on_fast(bad);
  }
  EXPECT_NE(sup.dtcs() & kDtcPllUnlock, 0);
}

TEST(Supervisor, AgcRailLatches) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.agc_gain = 2.39;  // ≥ 0.98 · 2.4
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcAgcRail, 0);
}

TEST(Supervisor, CtrlRailLatches) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.control_v = -2.39;  // sign-independent rail detection
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcCtrlRail, 0);
}

TEST(Supervisor, DriveCollapseLatches) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.amplitude = 0.1;  // < 0.25 · target
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcDriveCollapse, 0);
}

TEST(Supervisor, GainAnomalyLatchesOnBaselineShift) {
  SafetySupervisor sup(small_cfg());
  arm(sup);  // baseline gain 1.2
  for (long i = 0; i < 50; ++i) {
    FastSample s = nominal_fast(i);
    s.agc_gain = 2.0;  // |2.0 − 1.2| = 0.8 > 0.35 · 1.2, below the AGC rail
    sup.on_fast(s);
  }
  EXPECT_NE(sup.dtcs() & kDtcGainAnomaly, 0);
  EXPECT_EQ(sup.dtcs() & kDtcAgcRail, 0);
}

TEST(Supervisor, QuadRangeDegradesButNeverEscalates) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  SlowSample s = nominal_slow();
  s.quad_v = 0.8;  // implausible quadrature, but not a critical condition
  for (int i = 0; i < 50; ++i) (void)sup.on_slow(s);
  EXPECT_NE(sup.dtcs() & kDtcQuadRange, 0);
  EXPECT_EQ(sup.state(), SafetyState::Degraded);
}

TEST(Supervisor, RateRangeEscalatesAndRecovers) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  arm(sup);

  // Sustained implausible rate: DEGRADED immediately, SAFE_STATE after the
  // escalation debounce, output forced to null there.
  SlowSample bad = nominal_slow();
  bad.rate_v = 4.9;
  SlowDecision d;
  for (int i = 0; i < cfg.escalate_slow; ++i) d = sup.on_slow(bad);
  EXPECT_EQ(sup.state(), SafetyState::SafeState);
  EXPECT_TRUE(d.output_forced);
  EXPECT_DOUBLE_EQ(d.output_v, cfg.null_v);
  EXPECT_NE(sup.dtcs() & kDtcRateRange, 0);

  // Condition clears: one level per recover_slow quiet samples, DTC stays.
  for (int i = 0; i < cfg.recover_slow; ++i) d = sup.on_slow(nominal_slow());
  EXPECT_EQ(sup.state(), SafetyState::Degraded);
  EXPECT_FALSE(d.output_forced);
  for (int i = 0; i < cfg.recover_slow; ++i) d = sup.on_slow(nominal_slow());
  EXPECT_EQ(sup.state(), SafetyState::Nominal);
  EXPECT_GT(sup.nominal_return_fast(), 0);
  EXPECT_NE(sup.dtcs() & kDtcRateRange, 0) << "DTC must stay latched";
}

TEST(Supervisor, CompTempFreezesOnImplausibleReading) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  EXPECT_DOUBLE_EQ(sup.comp_temp(30.0), 30.0);
  // Thermistor open: reading flies out of the plausible window.
  EXPECT_DOUBLE_EQ(sup.comp_temp(412.0), 30.0);
  EXPECT_NE(sup.dtcs() & kDtcTempRange, 0);
  // Back in range: unfreezes and tracks again.
  EXPECT_DOUBLE_EQ(sup.comp_temp(31.0), 31.0);
  EXPECT_DOUBLE_EQ(sup.comp_temp(32.0), 32.0);
}

TEST(Supervisor, CompTempFrozenWhileGainAnomalous) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  EXPECT_DOUBLE_EQ(sup.comp_temp(25.0), 25.0);
  FastSample s = nominal_fast(0);
  s.agc_gain = 2.0;
  for (int i = 0; i < 50; ++i) sup.on_fast(s);
  ASSERT_NE(sup.dtcs() & kDtcGainAnomaly, 0);
  // The measured temperature rides the same drifting references — hold the
  // compensation input at the last plausible value.
  EXPECT_DOUBLE_EQ(sup.comp_temp(40.0), 25.0);
}

TEST(Supervisor, PlatformEventsLatch) {
  SafetySupervisor sup(small_cfg());
  sup.notify_watchdog_bite();
  sup.notify_selftest(false);
  sup.notify_cal_replay(false);
  EXPECT_NE(sup.dtcs() & kDtcWatchdogBite, 0);
  EXPECT_NE(sup.dtcs() & kDtcSelfTest, 0);
  EXPECT_NE(sup.dtcs() & kDtcCalCrc, 0);
  // A failed replay also raises the dedicated recovery code: the service
  // tool can tell "CRC audit failed in flight" from "recovery fell back to
  // safe-default coefficients".
  EXPECT_NE(sup.dtcs() & kDtcCalReplay, 0);
  EXPECT_EQ(sup.state(), SafetyState::Degraded);
  sup.notify_selftest(true);
  sup.notify_cal_replay(true);  // passing verdicts latch nothing new
  EXPECT_EQ(sup.dtcs(), kDtcWatchdogBite | kDtcSelfTest | kDtcCalCrc | kDtcCalReplay);
}

TEST(Supervisor, DiagRegistersTrackStateAndClear) {
  platform::RegisterFile rf;
  rf.define("some_cfg", 0, platform::RegKind::Config, 0x1234);
  SafetySupervisor sup(small_cfg());
  const std::uint16_t base = 8;
  sup.attach(&rf, base);
  EXPECT_EQ(rf.read(base + diag::kDtcReg), 0);
  EXPECT_EQ(rf.read(base + diag::kState), 0);

  sup.notify_watchdog_bite();
  EXPECT_EQ(rf.read(base + diag::kDtcReg), kDtcWatchdogBite);
  EXPECT_EQ(rf.read(base + diag::kState),
            static_cast<std::uint16_t>(SafetyState::Degraded));
  EXPECT_EQ(rf.read(base + diag::kEvents), 1);

  // Service-tool clear through the register interface (magic-guarded).
  rf.write(static_cast<std::uint16_t>(base + diag::kClear), 0x1111);
  EXPECT_EQ(rf.read(base + diag::kDtcReg), kDtcWatchdogBite) << "wrong magic";
  rf.write(static_cast<std::uint16_t>(base + diag::kClear), diag::kClearMagic);
  EXPECT_EQ(rf.read(base + diag::kDtcReg), 0);
  EXPECT_EQ(rf.read(base + diag::kEvents), 1) << "event count is history";
}

TEST(Supervisor, ScrubRepairsCorruptedConfigRegister) {
  platform::RegisterFile rf;
  std::uint16_t hook_seen = 0;
  rf.define("sense_gain", 0, platform::RegKind::Config, 0x0180,
            [&hook_seen](std::uint16_t v) { hook_seen = v; });
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  sup.attach(&rf, 8);
  arm(sup);  // captures shadows

  rf.corrupt(0, 0x0040);  // SEU: bit flip behind the datapath's back
  ASSERT_EQ(rf.read(0), 0x01C0);
  for (int i = 0; i < cfg.scrub_interval_slow; ++i) (void)sup.on_slow(nominal_slow());
  EXPECT_NE(sup.dtcs() & kDtcCfgCorrupt, 0);
  EXPECT_EQ(rf.read(0), 0x0180) << "scrubber must repair from the shadow";
  EXPECT_EQ(hook_seen, 0x0180) << "repair must go through the write hook";
}

TEST(Supervisor, ScrubIgnoresDiagClearWrites) {
  platform::RegisterFile rf;
  rf.define("some_cfg", 0, platform::RegKind::Config, 7);
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  sup.attach(&rf, 8);
  arm(sup);
  // A service tool poking the clear register is a legitimate write, not an
  // SEU — the scrubber must not shadow the DIAG block.
  rf.write(static_cast<std::uint16_t>(8 + diag::kClear), 0x2222);
  for (int i = 0; i < 4 * cfg.scrub_interval_slow; ++i)
    (void)sup.on_slow(nominal_slow());
  EXPECT_EQ(sup.dtcs() & kDtcCfgCorrupt, 0);
}

TEST(Supervisor, CalibrationAuditRunsOnCadence) {
  const auto cfg = small_cfg();
  SafetySupervisor sup(cfg);
  int audits = 0;
  bool healthy = true;
  sup.set_calibration_audit([&] {
    ++audits;
    return healthy;
  });
  arm(sup);
  for (int i = 0; i < cfg.audit_interval_slow; ++i) (void)sup.on_slow(nominal_slow());
  EXPECT_EQ(audits, 1);
  EXPECT_EQ(sup.dtcs() & kDtcCalCrc, 0);
  healthy = false;
  for (int i = 0; i < cfg.audit_interval_slow; ++i) (void)sup.on_slow(nominal_slow());
  EXPECT_EQ(audits, 2);
  EXPECT_NE(sup.dtcs() & kDtcCalCrc, 0);
}

TEST(Supervisor, ResetForgetsEverything) {
  SafetySupervisor sup(small_cfg());
  arm(sup);
  sup.notify_watchdog_bite();
  sup.reset();
  EXPECT_EQ(sup.dtcs(), 0);
  EXPECT_EQ(sup.state(), SafetyState::Nominal);
  EXPECT_FALSE(sup.armed());
  EXPECT_EQ(sup.fast_index(), 0);
  EXPECT_EQ(sup.first_latch_fast(kDtcWatchdogBite), -1);
}

TEST(Dtc, NamesAndDescriptions) {
  EXPECT_STREQ(dtc_name(kDtcPllUnlock), "PLL_UNLOCK");
  EXPECT_STREQ(dtc_name(kDtcCalCrc), "CAL_CRC");
  EXPECT_EQ(describe_dtcs(0), "-");
  EXPECT_EQ(describe_dtcs(kDtcPllUnlock | kDtcAgcRail), "PLL_UNLOCK|AGC_RAIL");
  EXPECT_STREQ(state_name(SafetyState::SafeState), "SAFE_STATE");
}

}  // namespace
}  // namespace ascp::safety
