#include <gtest/gtest.h>

#include <cmath>

#include "common/math.hpp"
#include "sensor/environment.hpp"

namespace ascp::sensor {
namespace {

TEST(Profile, DefaultIsZero) {
  Profile p;
  EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(100.0), 0.0);
}

TEST(Profile, ConstantHoldsValue) {
  const auto p = Profile::constant(42.0);
  EXPECT_DOUBLE_EQ(p.at(-1.0), 42.0);
  EXPECT_DOUBLE_EQ(p.at(1e6), 42.0);
}

TEST(Profile, StepSwitchesAtT0) {
  const auto p = Profile::step(100.0, 0.5);
  EXPECT_DOUBLE_EQ(p.at(0.499), 0.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 100.0);
  EXPECT_DOUBLE_EQ(p.at(2.0), 100.0);
}

TEST(Profile, SineHasRequestedAmplitudeAndFrequency) {
  const auto p = Profile::sine(10.0, 2.0);  // 2 Hz
  EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
  EXPECT_NEAR(p.at(0.125), 10.0, 1e-9);  // quarter period of 2 Hz
  EXPECT_NEAR(p.at(0.25), 0.0, 1e-9);
}

TEST(Profile, SineSilentBeforeStart) {
  const auto p = Profile::sine(10.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 0.0);
  EXPECT_NEAR(p.at(1.125), 10.0, 1e-9);
}

TEST(Profile, RampInterpolatesAndClamps) {
  const auto p = Profile::ramp(-40.0, 85.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(p.at(-5.0), -40.0);
  EXPECT_DOUBLE_EQ(p.at(0.0), -40.0);
  EXPECT_NEAR(p.at(5.0), 22.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.at(20.0), 85.0);
}

TEST(Profile, StaircaseStepsThroughLevels) {
  const auto p = Profile::staircase({1.0, 2.0, 3.0}, 0.1);
  EXPECT_DOUBLE_EQ(p.at(0.05), 1.0);
  EXPECT_DOUBLE_EQ(p.at(0.15), 2.0);
  EXPECT_DOUBLE_EQ(p.at(0.25), 3.0);
  EXPECT_DOUBLE_EQ(p.at(5.0), 3.0);  // holds last level
}

TEST(Profile, StaircaseEmptyIsZero) {
  const auto p = Profile::staircase({}, 0.1);
  EXPECT_DOUBLE_EQ(p.at(1.0), 0.0);
}

TEST(Profile, ChirpSweepsFrequency) {
  const auto p = Profile::chirp(1.0, 1.0, 10.0, 0.0, 10.0);
  // Instantaneous frequency at t: f0 + (f1-f0)·t/T. Count zero crossings in
  // two windows to confirm the sweep.
  auto crossings = [&](double t0, double t1) {
    int count = 0;
    double prev = p.at(t0);
    for (double t = t0; t <= t1; t += 1e-4) {
      const double v = p.at(t);
      if (prev <= 0.0 && v > 0.0) ++count;
      prev = v;
    }
    return count;
  };
  EXPECT_LT(crossings(0.0, 1.0), crossings(9.0, 10.0));
}

TEST(Profile, ChirpSilentBeforeStart) {
  const auto p = Profile::chirp(1.0, 1.0, 10.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(p.at(0.5), 0.0);
}

// ---- boundary edge cases ---------------------------------------------------

TEST(Profile, StaircaseExactDwellEdgeStartsNextLevel) {
  const auto p = Profile::staircase({1.0, 2.0, 3.0}, 0.1);
  // The boundary sample belongs to the step that starts there.
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(0.1), 2.0);
  EXPECT_DOUBLE_EQ(p.at(0.2), 3.0);
  // The last dwell edge (t == n·dwell) holds the final level, not UB.
  EXPECT_DOUBLE_EQ(p.at(0.3), 3.0);
}

TEST(Profile, StaircaseNegativeTimeIsZero) {
  const auto p = Profile::staircase({1.0, 2.0}, 0.1);
  EXPECT_DOUBLE_EQ(p.at(-0.05), 0.0);
}

TEST(Profile, StaircaseHugeTimeHoldsLastLevel) {
  // t/dwell far beyond SIZE_MAX must clamp, not wrap through the size_t cast.
  const auto p = Profile::staircase({1.0, 2.0}, 1e-12);
  EXPECT_DOUBLE_EQ(p.at(1e9), 2.0);
}

TEST(Profile, StaircaseDegenerateDwellHoldsLastLevel) {
  EXPECT_DOUBLE_EQ(Profile::staircase({4.0, 7.0}, 0.0).at(0.5), 7.0);
  EXPECT_DOUBLE_EQ(Profile::staircase({4.0, 7.0}, -1.0).at(0.5), 7.0);
}

TEST(Profile, ChirpStartsAtZeroPhase) {
  const auto p = Profile::chirp(3.0, 5.0, 20.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 0.0);  // sin(0) exactly at t == t0
}

TEST(Profile, ChirpHoldsSweepEndValuePastT1) {
  const auto p = Profile::chirp(1.0, 1.0, 10.0, 0.0, 10.0);
  const double end = p.at(10.0);
  EXPECT_DOUBLE_EQ(p.at(11.0), end);
  EXPECT_DOUBLE_EQ(p.at(1e6), end);
}

TEST(Profile, ChirpDegenerateWindowIsConstantFrequencySine) {
  // t1 <= t0 must not produce a 0/0 sweep slope: f0 applies from t0 on.
  const auto p = Profile::chirp(2.0, 4.0, 9.0, 1.0, 1.0);
  const auto ref = Profile::sine(2.0, 4.0, 1.0);
  for (double t : {1.0, 1.03125, 1.25, 2.5}) EXPECT_DOUBLE_EQ(p.at(t), ref.at(t)) << t;
}

TEST(Profile, RampBoundarySamplesTakeEndpointValues) {
  const auto p = Profile::ramp(-1.0, 1.0, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(p.at(2.0), -1.0);
  EXPECT_DOUBLE_EQ(p.at(4.0), 1.0);
}

TEST(Profile, FnEscapeHatchStillWorks) {
  const Profile p([](double t) { return 3.0 * t; });
  EXPECT_DOUBLE_EQ(p.at(0.5), 1.5);
  EXPECT_DOUBLE_EQ(p.at(-2.0), -6.0);
}

}  // namespace
}  // namespace ascp::sensor
