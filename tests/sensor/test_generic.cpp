#include <gtest/gtest.h>

#include <cmath>

#include "sensor/generic.hpp"

namespace ascp::sensor {
namespace {

TEST(CapPressure, RestCapacitanceAtZeroPressure) {
  CapacitivePressureSensor::Config cfg;
  cfg.noise_farads = 0.0;
  CapacitivePressureSensor s(cfg, ascp::Rng(1));
  EXPECT_NEAR(s.capacitance(0.0), cfg.c0_farads, 1e-18);
}

TEST(CapPressure, CapacitanceGrowsWithPressure) {
  CapacitivePressureSensor::Config cfg;
  cfg.noise_farads = 0.0;
  CapacitivePressureSensor s(cfg, ascp::Rng(1));
  double prev = s.capacitance(0.0);
  for (double p = 50.0; p <= 500.0; p += 50.0) {
    const double c = s.capacitance(p);
    EXPECT_GT(c, prev) << p;
    prev = c;
  }
}

TEST(CapPressure, NonlinearityStrengthensNearCollapse) {
  CapacitivePressureSensor::Config cfg;
  cfg.noise_farads = 0.0;
  CapacitivePressureSensor s(cfg, ascp::Rng(1));
  const double slope_low = s.capacitance(100.0) - s.capacitance(0.0);
  const double slope_high = s.capacitance(600.0) - s.capacitance(500.0);
  EXPECT_GT(slope_high, slope_low * 1.5);
}

TEST(CapPressure, TempcoShiftsCapacitance) {
  CapacitivePressureSensor::Config cfg;
  cfg.noise_farads = 0.0;
  CapacitivePressureSensor s(cfg, ascp::Rng(1));
  EXPECT_GT(s.capacitance(100.0, 85.0), s.capacitance(100.0, 25.0));
}

TEST(ResistiveBridge, ZeroLoadGivesOnlyOffset) {
  ResistiveBridgeSensor::Config cfg;
  cfg.noise_density = 0.0;
  ResistiveBridgeSensor s(cfg, ascp::Rng(5));
  const double v = s.output(0.0, 5.0);
  EXPECT_LT(std::abs(v), 5.0 * 0.01);  // bounded by a few × offset draw
}

TEST(ResistiveBridge, OutputScalesWithExcitation) {
  ResistiveBridgeSensor::Config cfg;
  cfg.noise_density = 0.0;
  cfg.offset_fraction = 0.0;
  ResistiveBridgeSensor s(cfg, ascp::Rng(1));
  const double v5 = s.output(0.5, 5.0);
  const double v10 = s.output(0.5, 10.0);
  EXPECT_NEAR(v10 / v5, 2.0, 1e-9);
}

TEST(ResistiveBridge, FullScaleOutputMatchesGaugeMath) {
  ResistiveBridgeSensor::Config cfg;
  cfg.noise_density = 0.0;
  cfg.offset_fraction = 0.0;
  ResistiveBridgeSensor s(cfg, ascp::Rng(1));
  // ΔR/R = 2.0·1e-3 = 2e-3; Vout ≈ Vexc·ΔR/R/(1+ΔR/2R).
  const double expected = 5.0 * 2e-3 / (1.0 + 1e-3);
  EXPECT_NEAR(s.output(1.0, 5.0), expected, 1e-6);
}

TEST(ResistiveBridge, SpanDriftsNegativeWithTemperature) {
  ResistiveBridgeSensor::Config cfg;
  cfg.noise_density = 0.0;
  cfg.offset_fraction = 0.0;
  cfg.offset_tempco = 0.0;  // isolate the span (gain) drift
  ResistiveBridgeSensor s(cfg, ascp::Rng(1));
  EXPECT_LT(s.output(1.0, 5.0, 125.0), s.output(1.0, 5.0, 25.0));
}

TEST(ResistiveBridge, LoadClampsAtFullScale) {
  ResistiveBridgeSensor::Config cfg;
  cfg.noise_density = 0.0;
  cfg.offset_fraction = 0.0;
  ResistiveBridgeSensor s(cfg, ascp::Rng(1));
  EXPECT_DOUBLE_EQ(s.output(5.0, 5.0), s.output(1.0, 5.0));
}

TEST(Lvdt, NullAtCentre) {
  LvdtSensor::Config cfg;
  cfg.null_fraction = 0.0;
  LvdtSensor s(cfg, ascp::Rng(1));
  EXPECT_NEAR(s.output(1.0, 0.0, 0.0), 0.0, 1e-12);
}

TEST(Lvdt, SignFollowsDirection) {
  LvdtSensor::Config cfg;
  cfg.null_fraction = 0.0;
  cfg.phase_rad = 0.0;
  LvdtSensor s(cfg, ascp::Rng(1));
  EXPECT_GT(s.output(1.0, 0.0, 2.0), 0.0);
  EXPECT_LT(s.output(1.0, 0.0, -2.0), 0.0);
}

TEST(Lvdt, AmplitudeModulatesCarrier) {
  LvdtSensor::Config cfg;
  cfg.null_fraction = 0.0;
  cfg.phase_rad = 0.0;
  LvdtSensor s(cfg, ascp::Rng(1));
  // Half stroke: coupling ≈ 0.8·0.5·(1−0.05·0.25).
  const double expected = 0.8 * 0.5 * (1.0 - 0.05 * 0.25);
  EXPECT_NEAR(s.output(1.0, 0.0, 2.5), expected, 1e-12);
}

TEST(Lvdt, StrokeClampsAtEnds) {
  LvdtSensor::Config cfg;
  cfg.null_fraction = 0.0;
  LvdtSensor s(cfg, ascp::Rng(1));
  EXPECT_DOUBLE_EQ(s.output(1.0, 0.0, 50.0), s.output(1.0, 0.0, 5.0));
}

TEST(Lvdt, PhaseShiftLeaksIntoQuadrature) {
  LvdtSensor::Config cfg;
  cfg.null_fraction = 0.0;
  cfg.phase_rad = 0.3;
  LvdtSensor s(cfg, ascp::Rng(1));
  // With pure quadrature excitation sample (v_exc = 0), output is nonzero.
  EXPECT_GT(std::abs(s.output(0.0, 1.0, 2.0)), 1e-3);
}

}  // namespace
}  // namespace ascp::sensor
