#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/spectrum.hpp"
#include "sensor/gyro_mems.hpp"

namespace ascp::sensor {
namespace {

GyroMemsConfig quiet_config() {
  GyroMemsConfig cfg;
  cfg.brownian_accel_density = 0.0;
  cfg.quad_stiffness = 0.0;
  return cfg;
}

/// Drive the primary mode at frequency f with voltage amplitude `amp` for
/// `seconds`; returns the peak |x| over the last 10 % of the run.
double ring_up(GyroMems& gyro, double f, double amp, double seconds, double rate_dps = 0.0,
               double temp_c = 25.0) {
  const double fs = gyro.config().sim_fs;
  const int n = static_cast<int>(seconds * fs);
  double peak = 0.0;
  for (int i = 0; i < n; ++i) {
    GyroInputs in;
    in.v_drive = amp * std::sin(kTwoPi * f * i / fs);
    in.rate_dps = rate_dps;
    in.temp_c = temp_c;
    gyro.step(in);
    if (i > n * 9 / 10) peak = std::max(peak, std::abs(gyro.x()));
  }
  return peak;
}

TEST(GyroMems, AtRestEverythingIsZero) {
  GyroMems gyro(quiet_config(), ascp::Rng(1));
  for (int i = 0; i < 1000; ++i) gyro.step(GyroInputs{});
  EXPECT_DOUBLE_EQ(gyro.x(), 0.0);
  EXPECT_DOUBLE_EQ(gyro.y(), 0.0);
}

TEST(GyroMems, ResonantAmplitudeMatchesQTheory) {
  // Steady state at resonance: |x| = Q·f_d/ω0².
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 2000.0;  // moderate Q for fast ring-up
  GyroMems gyro(cfg, ascp::Rng(1));
  const double amp_v = 1.0;
  const double w0 = kTwoPi * cfg.f0_hz;
  // Ring-up time constant 2Q/ω0 ≈ 42 ms; run 0.4 s.
  const double peak = ring_up(gyro, cfg.f0_hz, amp_v, 0.4);
  const double expected = cfg.q_drive * cfg.force_per_volt * amp_v / (w0 * w0);
  EXPECT_NEAR(peak, expected, 0.05 * expected);
}

TEST(GyroMems, OffResonanceResponseIsWeak) {
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 2000.0;
  GyroMems gyro(cfg, ascp::Rng(1));
  const double peak = ring_up(gyro, cfg.f0_hz * 1.05, 1.0, 0.3);
  GyroMems gyro2(cfg, ascp::Rng(1));
  const double peak_res = ring_up(gyro2, cfg.f0_hz, 1.0, 0.3);
  EXPECT_LT(peak, peak_res / 50.0);
}

TEST(GyroMems, CoriolisTransfersEnergyToSenseMode) {
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 2000.0;
  cfg.q_sense = 2000.0;
  GyroMems gyro(cfg, ascp::Rng(1));
  ring_up(gyro, cfg.f0_hz, 1.0, 0.4, /*rate=*/100.0);
  // Sense amplitude should match mechanical_sensitivity prediction.
  const double fs = cfg.sim_fs;
  double y_peak = 0.0, x_peak = 0.0;
  for (int i = 0; i < static_cast<int>(0.05 * fs); ++i) {
    GyroInputs in;
    in.v_drive = std::sin(kTwoPi * cfg.f0_hz * i / fs);  // phase-discontinuous but brief
    in.rate_dps = 100.0;
    gyro.step(in);
    y_peak = std::max(y_peak, std::abs(gyro.y()));
    x_peak = std::max(x_peak, std::abs(gyro.x()));
  }
  const double expected = gyro.mechanical_sensitivity(x_peak) * 100.0;
  EXPECT_NEAR(y_peak, expected, 0.25 * expected);
}

TEST(GyroMems, SenseAmplitudeProportionalToRate) {
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 1000.0;
  cfg.q_sense = 1000.0;
  double y_at[2];
  int k = 0;
  for (double rate : {50.0, 150.0}) {
    GyroMems gyro(cfg, ascp::Rng(1));
    ring_up(gyro, cfg.f0_hz, 1.0, 0.3, rate);
    double y_peak = 0.0;
    const double fs = cfg.sim_fs;
    for (int i = 0; i < static_cast<int>(0.02 * fs); ++i) {
      GyroInputs in;
      in.v_drive = std::sin(kTwoPi * cfg.f0_hz * i / fs);
      in.rate_dps = rate;
      gyro.step(in);
      y_peak = std::max(y_peak, std::abs(gyro.y()));
    }
    y_at[k++] = y_peak;
  }
  EXPECT_NEAR(y_at[1] / y_at[0], 3.0, 0.3);
}

TEST(GyroMems, ZeroRateZeroQuadratureGivesNoSenseSignal) {
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 1000.0;
  GyroMems gyro(cfg, ascp::Rng(1));
  ring_up(gyro, cfg.f0_hz, 1.0, 0.3, 0.0);
  EXPECT_LT(std::abs(gyro.y()), 1e-12);
}

TEST(GyroMems, QuadratureCouplingExcitesSenseModeWithoutRate) {
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 1000.0;
  cfg.quad_stiffness = 6e4;
  GyroMems gyro(cfg, ascp::Rng(1));
  ring_up(gyro, cfg.f0_hz, 1.0, 0.3, 0.0);
  double y_peak = 0.0;
  const double fs = cfg.sim_fs;
  for (int i = 0; i < static_cast<int>(0.02 * fs); ++i) {
    GyroInputs in;
    in.v_drive = std::sin(kTwoPi * cfg.f0_hz * i / fs);
    gyro.step(in);
    y_peak = std::max(y_peak, std::abs(gyro.y()));
  }
  EXPECT_GT(y_peak, 1e-9);
}

TEST(GyroMems, ResonanceShiftsWithTemperature) {
  const GyroMemsConfig cfg = quiet_config();
  GyroMems gyro(cfg, ascp::Rng(1));
  EXPECT_NEAR(gyro.f0_at(25.0), 15e3, 1e-9);
  // Negative tempco: hot ⇒ softer ⇒ lower resonance.
  EXPECT_LT(gyro.f0_at(85.0), 15e3);
  EXPECT_GT(gyro.f0_at(-40.0), 15e3);
  EXPECT_NEAR(gyro.f0_at(85.0), 15e3 * (1.0 - 20e-6 * 60.0), 0.1);
}

TEST(GyroMems, QDropsWhenHot) {
  GyroMems gyro(quiet_config(), ascp::Rng(1));
  EXPECT_LT(gyro.q_at(85.0), gyro.q_at(25.0));
  EXPECT_GT(gyro.q_at(-40.0), gyro.q_at(25.0));
}

TEST(GyroMems, BrownianNoiseShakesSenseMode) {
  GyroMemsConfig cfg = quiet_config();
  cfg.brownian_accel_density = 1e-3;  // exaggerated
  GyroMems gyro(cfg, ascp::Rng(3));
  double y_rms = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    gyro.step(GyroInputs{});
    y_rms += gyro.y() * gyro.y();
  }
  EXPECT_GT(std::sqrt(y_rms / n), 1e-12);
}

TEST(GyroMems, PickoffNonlinearityGrowsWithDisplacement) {
  // ΔC/x at large x exceeds ΔC/x at small x (gap nonlinearity is softening
  // toward the electrode).
  GyroMemsConfig cfg = quiet_config();
  GyroMems gyro(cfg, ascp::Rng(1));
  // Use the model's pickoff indirectly: drive to two amplitudes and compare
  // ΔC/x ratios through outputs. Direct white-box: capacitance at x and 2x.
  // Small amplitudes: linear.
  // (accessible only through step(); drive to different amplitudes)
  cfg.q_drive = 1000.0;
  GyroMems small(cfg, ascp::Rng(1)), large(cfg, ascp::Rng(1));
  ring_up(small, cfg.f0_hz, 0.2, 0.3);
  ring_up(large, cfg.f0_hz, 2.0, 0.3);
  const double fs = cfg.sim_fs;
  double ratio_small = 0.0, ratio_large = 0.0;
  for (int i = 0; i < static_cast<int>(0.01 * fs); ++i) {
    GyroInputs in;
    in.v_drive = 0.2 * std::sin(kTwoPi * cfg.f0_hz * i / fs);
    const auto o1 = small.step(in);
    if (std::abs(small.x()) > 1e-9)
      ratio_small = std::max(ratio_small, std::abs(o1.dc_primary / small.x()));
    in.v_drive = 2.0 * std::sin(kTwoPi * cfg.f0_hz * i / fs);
    const auto o2 = large.step(in);
    if (std::abs(large.x()) > 1e-9)
      ratio_large = std::max(ratio_large, std::abs(o2.dc_primary / large.x()));
  }
  EXPECT_GT(ratio_large, ratio_small * 1.01);
}

TEST(GyroMems, ControlElectrodeCancelsSenseMotion) {
  // Closed-loop principle: a control force equal and opposite to the
  // Coriolis force keeps y ≈ 0. Apply scaled anti-phase control and verify
  // the sense amplitude drops.
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 1000.0;
  cfg.q_sense = 1000.0;
  GyroMems open(cfg, ascp::Rng(1)), closed(cfg, ascp::Rng(1));
  const double fs = cfg.sim_fs;
  const double rate = 100.0;
  double y_open = 0.0, y_closed = 0.0;
  for (int i = 0; i < static_cast<int>(0.5 * fs); ++i) {
    GyroInputs in;
    in.v_drive = std::sin(kTwoPi * cfg.f0_hz * i / fs);
    in.rate_dps = rate;
    open.step(in);
    // Ideal feedback: cancel the Coriolis force −2κΩ·ẋ with +2κΩ·ẋ/fpv volts.
    GyroInputs inc = in;
    const double omega = rate * kPi / 180.0;
    inc.v_control = 2.0 * cfg.angular_gain * omega * closed.vx() / cfg.force_per_volt;
    closed.step(inc);
    if (i > static_cast<int>(0.4 * fs)) {
      y_open = std::max(y_open, std::abs(open.y()));
      y_closed = std::max(y_closed, std::abs(closed.y()));
    }
  }
  EXPECT_LT(y_closed, y_open / 20.0);
}

TEST(GyroMems, ResetZeroesState) {
  GyroMems gyro(quiet_config(), ascp::Rng(1));
  ring_up(gyro, 15e3, 1.0, 0.05);
  gyro.reset();
  EXPECT_DOUBLE_EQ(gyro.x(), 0.0);
  EXPECT_DOUBLE_EQ(gyro.vx(), 0.0);
  EXPECT_DOUBLE_EQ(gyro.y(), 0.0);
  EXPECT_DOUBLE_EQ(gyro.vy(), 0.0);
}

// Rate sweep: mechanical response proportional across the dynamic range.
class GyroRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(GyroRateSweep, SenseScalesLinearly) {
  const double rate = GetParam();
  GyroMemsConfig cfg = quiet_config();
  cfg.q_drive = 1000.0;
  cfg.q_sense = 1000.0;
  GyroMems gyro(cfg, ascp::Rng(1));
  ring_up(gyro, cfg.f0_hz, 1.0, 0.3, rate);
  double y_peak = 0.0, x_peak = 0.0;
  const double fs = cfg.sim_fs;
  for (int i = 0; i < static_cast<int>(0.02 * fs); ++i) {
    GyroInputs in;
    in.v_drive = std::sin(kTwoPi * cfg.f0_hz * i / fs);
    in.rate_dps = rate;
    gyro.step(in);
    y_peak = std::max(y_peak, std::abs(gyro.y()));
    x_peak = std::max(x_peak, std::abs(gyro.x()));
  }
  const double expected = gyro.mechanical_sensitivity(x_peak) * rate;
  EXPECT_NEAR(y_peak, expected, 0.3 * expected) << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, GyroRateSweep, ::testing::Values(25.0, 75.0, 150.0, 300.0));

}  // namespace
}  // namespace ascp::sensor
