// The stimulus seam in isolation: synthetic bit-identity with Profile, the
// `.strace` container's framing/error classes, RecordedSource's exact and
// interpolated replay paths, QueueSource's bounded ingestion, and the
// recorder probe. Whole-platform record → replay proofs live in
// engine/test_record_replay.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/state_archive.hpp"
#include "sensor/stimulus_source.hpp"

namespace ascp::sensor {
namespace {

// ---- SyntheticSource -------------------------------------------------------

TEST(SyntheticSource, MatchesProfileOnTickAxis) {
  const double fs = 1.92e6;
  SyntheticSource src(Profile::sine(30.0, 50.0), Profile::ramp(25.0, 85.0, 0.0, 1.0), fs);
  const auto rate = Profile::sine(30.0, 50.0);
  const auto temp = Profile::ramp(25.0, 85.0, 0.0, 1.0);
  for (long tick : {0L, 1L, 17L, 1920000L}) {
    const double t = static_cast<double>(tick) * (1.0 / fs);
    const StimulusSample s = src.sample(tick);
    EXPECT_EQ(s.rate_dps, rate.at(t)) << tick;
    EXPECT_EQ(s.temp_c, temp.at(t)) << tick;
  }
}

TEST(SyntheticSource, OriginShiftsTheTimeAxis) {
  const double fs = 1000.0;
  SyntheticSource shifted(Profile::step(10.0, 0.5), Profile::constant(25.0), fs,
                          /*origin_tick=*/500);
  // tick 500 is the shifted source's t = 0.
  EXPECT_EQ(shifted.sample(500).rate_dps, 0.0);
  EXPECT_EQ(shifted.sample(1000).rate_dps, 10.0);
}

// ---- .strace container -----------------------------------------------------

StimulusTrace demo_trace(std::size_t n = 8, double rate_hz = 1000.0) {
  StimulusTrace t;
  t.sample_rate_hz = rate_hz;
  for (std::size_t i = 0; i < n; ++i)
    t.samples.push_back({static_cast<double>(i) * 1.5, 25.0 + static_cast<double>(i)});
  return t;
}

TEST(Strace, EncodeDecodeRoundTripIsExact) {
  const StimulusTrace t = demo_trace();
  const StimulusTrace back = decode_strace(encode_strace(t));
  ASSERT_EQ(back.samples.size(), t.samples.size());
  EXPECT_EQ(back.sample_rate_hz, t.sample_rate_hz);
  EXPECT_EQ(back.interp, t.interp);
  for (std::size_t i = 0; i < t.samples.size(); ++i) {
    EXPECT_EQ(back.samples[i].rate_dps, t.samples[i].rate_dps);
    EXPECT_EQ(back.samples[i].temp_c, t.samples[i].temp_c);
  }
}

TEST(Strace, InspectReportsHeaderFields) {
  auto t = demo_trace(5, 250.0);
  t.interp = TraceInterp::Linear;
  const auto bytes = encode_strace(t);
  StraceInfo info;
  ASSERT_TRUE(inspect_strace(bytes, &info));
  EXPECT_EQ(info.version, kStraceVersion);
  EXPECT_EQ(info.interp, 1u);
  EXPECT_EQ(info.sample_rate_hz, 250.0);
  EXPECT_EQ(info.count, 5u);
  EXPECT_TRUE(info.crc_ok);
}

// Each corruption class raises its own distinct error, mirroring the
// checkpoint container's failure taxonomy.
TEST(Strace, DistinctErrorsForTruncationMagicVersionAndBitRot) {
  const auto good = encode_strace(demo_trace());

  auto headerless = good;
  headerless.resize(kStraceHeaderSize - 1);
  EXPECT_THROW(decode_strace(headerless), StateError);

  auto bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_strace(bad_magic), StateError);
  EXPECT_FALSE(inspect_strace(bad_magic, nullptr));

  auto bad_version = good;
  bad_version[8] = 0x7F;
  EXPECT_THROW(decode_strace(bad_version), StateError);

  auto truncated = good;
  truncated.resize(good.size() - 7);
  EXPECT_THROW(decode_strace(truncated), StateError);

  auto corrupted = good;
  corrupted[kStraceHeaderSize + 3] ^= 0x10;
  EXPECT_THROW(decode_strace(corrupted), StateError);
  StraceInfo info;
  ASSERT_TRUE(inspect_strace(corrupted, &info));
  EXPECT_FALSE(info.crc_ok);

  // And the messages are distinct (the chaos harness keys on them).
  std::string msgs[2];
  try { decode_strace(truncated); } catch (const StateError& e) { msgs[0] = e.what(); }
  try { decode_strace(corrupted); } catch (const StateError& e) { msgs[1] = e.what(); }
  EXPECT_NE(msgs[0], msgs[1]);
}

TEST(Strace, SaveLoadFileRoundTrip) {
  const char* path = "strace_roundtrip_test.strace";
  const StimulusTrace t = demo_trace(12);
  ASSERT_TRUE(save_strace(path, t));
  const StimulusTrace back = load_strace(path);
  EXPECT_EQ(back.samples.size(), t.samples.size());
  EXPECT_EQ(back.samples.back().rate_dps, t.samples.back().rate_dps);
  std::remove(path);
  EXPECT_THROW(load_strace(path), StateError);
}

// ---- RecordedSource --------------------------------------------------------

TEST(RecordedSource, ExactRateReplaysBitForBit) {
  auto trace = std::make_shared<StimulusTrace>(demo_trace(6, 1000.0));
  RecordedSource src(trace, /*tick_rate_hz=*/1000.0);
  for (long k = 0; k < 6; ++k) {
    EXPECT_EQ(src.sample(k).rate_dps, trace->samples[static_cast<std::size_t>(k)].rate_dps);
    EXPECT_EQ(src.cursor(), k);
  }
  EXPECT_EQ(src.underruns(), 0u);
  // Past the end: hold the last sample, count underruns.
  EXPECT_EQ(src.sample(6).rate_dps, trace->samples.back().rate_dps);
  EXPECT_EQ(src.underruns(), 1u);
}

TEST(RecordedSource, HoldInterpolationAtSlowerTraceRate) {
  // Trace at 500 Hz driven at 1 kHz: each recorded sample covers two ticks.
  auto trace = std::make_shared<StimulusTrace>(demo_trace(4, 500.0));
  RecordedSource src(trace, 1000.0);
  EXPECT_EQ(src.sample(0).rate_dps, trace->samples[0].rate_dps);
  EXPECT_EQ(src.sample(1).rate_dps, trace->samples[0].rate_dps);
  EXPECT_EQ(src.sample(2).rate_dps, trace->samples[1].rate_dps);
  EXPECT_EQ(src.sample(3).rate_dps, trace->samples[1].rate_dps);
}

TEST(RecordedSource, LinearInterpolationBlendsNeighbours) {
  auto t = demo_trace(4, 500.0);
  t.interp = TraceInterp::Linear;
  auto trace = std::make_shared<StimulusTrace>(std::move(t));
  RecordedSource src(trace, 1000.0);
  // Tick 1 sits exactly halfway between samples 0 and 1 (0.0 and 1.5 dps).
  EXPECT_DOUBLE_EQ(src.sample(1).rate_dps, 0.75);
}

TEST(RecordedSource, StartTickOffsetsReplay) {
  auto trace = std::make_shared<StimulusTrace>(demo_trace(6, 1000.0));
  RecordedSource src(trace, 1000.0, /*start_tick=*/100);
  EXPECT_EQ(src.sample(100).rate_dps, trace->samples[0].rate_dps);
  EXPECT_EQ(src.sample(103).rate_dps, trace->samples[3].rate_dps);
}

TEST(RecordedSource, RejectsEmptyTraceAndBadRates) {
  auto empty = std::make_shared<StimulusTrace>();
  empty->sample_rate_hz = 1000.0;
  EXPECT_THROW(RecordedSource(empty, 1000.0), StateError);
  auto no_rate = std::make_shared<StimulusTrace>(demo_trace(3, 0.0));
  EXPECT_THROW(RecordedSource(no_rate, 1000.0), StateError);
}

TEST(RecordedSource, CheckpointRestoresCursorAndUnderruns) {
  auto trace = std::make_shared<StimulusTrace>(demo_trace(4, 1000.0));
  RecordedSource src(trace, 1000.0);
  src.sample(0);
  src.sample(1);
  src.sample(2);
  StateArchive saver = StateArchive::saver();
  src.serialize_state(saver);
  const auto bytes = saver.take();

  RecordedSource fresh(trace, 1000.0);
  StateArchive loader = StateArchive::loader(bytes);
  fresh.serialize_state(loader);
  EXPECT_EQ(fresh.cursor(), 2);
  EXPECT_EQ(fresh.underruns(), 0u);

  // A different trace is not a valid restore target.
  auto other = std::make_shared<StimulusTrace>(demo_trace(9, 1000.0));
  RecordedSource wrong(other, 1000.0);
  StateArchive loader2 = StateArchive::loader(bytes);
  EXPECT_THROW(wrong.serialize_state(loader2), StateError);
}

// ---- QueueSource -----------------------------------------------------------

TEST(QueueSource, DeliversPushedSamplesInOrder) {
  QueueSource src;
  ASSERT_TRUE(src.push({1.0, 20.0}));
  ASSERT_TRUE(src.push({2.0, 21.0}));
  EXPECT_EQ(src.pending(), 2u);
  EXPECT_EQ(src.sample(0).rate_dps, 1.0);
  EXPECT_EQ(src.sample(1).rate_dps, 2.0);
  EXPECT_EQ(src.pending(), 0u);
  EXPECT_EQ(src.underruns(), 0u);
}

TEST(QueueSource, BoundedCapacityRefusesOverflow) {
  QueueSource::Config cfg;
  cfg.capacity = 2;
  QueueSource src(cfg);
  EXPECT_TRUE(src.push({1.0, 25.0}));
  EXPECT_TRUE(src.push({2.0, 25.0}));
  EXPECT_FALSE(src.push({3.0, 25.0}));
  EXPECT_EQ(src.pending(), 2u);
}

TEST(QueueSource, UnderrunPoliciesHoldLastVsNull) {
  QueueSource hold;
  hold.push({7.0, 30.0});
  hold.sample(0);
  EXPECT_EQ(hold.sample(1).rate_dps, 7.0);  // HoldLast repeats
  EXPECT_EQ(hold.underruns(), 1u);

  QueueSource::Config cfg;
  cfg.underrun = UnderrunPolicy::Null;
  QueueSource null_src(cfg);
  null_src.push({7.0, 30.0});
  null_src.sample(0);
  const StimulusSample s = null_src.sample(1);
  EXPECT_EQ(s.rate_dps, 0.0);
  EXPECT_EQ(s.temp_c, 25.0);
}

TEST(QueueSource, CheckpointCarriesPendingSamples) {
  QueueSource src;
  src.push({1.0, 20.0});
  src.push({2.0, 21.0});
  src.push({3.0, 22.0});
  src.sample(0);  // consume one, leaving two pending
  StateArchive saver = StateArchive::saver();
  src.serialize_state(saver);
  const auto bytes = saver.take();

  QueueSource fresh;
  StateArchive loader = StateArchive::loader(bytes);
  fresh.serialize_state(loader);
  EXPECT_EQ(fresh.pending(), 2u);
  EXPECT_EQ(fresh.sample(1).rate_dps, 2.0);
  EXPECT_EQ(fresh.sample(2).rate_dps, 3.0);
}

// ---- probes ----------------------------------------------------------------

TEST(StimulusRecorder, CapturesOnlyStimulusFrames) {
  StimulusRecorder rec(1000.0);
  EXPECT_TRUE(rec.wants(ProbePoint::Stimulus));
  EXPECT_FALSE(rec.wants(ProbePoint::PostAdc));
  rec.on_frame({ProbePoint::Stimulus, 0, 3.0, 25.0});
  rec.on_frame({ProbePoint::Stimulus, 1, 4.0, 26.0});
  ASSERT_EQ(rec.trace().samples.size(), 2u);
  EXPECT_EQ(rec.trace().samples[1].rate_dps, 4.0);
  EXPECT_EQ(rec.trace().samples[1].temp_c, 26.0);
}

TEST(StimulusRecorder, DecimationKeepsEveryNth) {
  StimulusRecorder rec(500.0, /*decimate=*/2);
  for (long k = 0; k < 6; ++k)
    rec.on_frame({ProbePoint::Stimulus, k, static_cast<double>(k), 25.0});
  ASSERT_EQ(rec.trace().samples.size(), 3u);
  EXPECT_EQ(rec.trace().samples[2].rate_dps, 4.0);
}

TEST(ProbePoint, NamesAreStable) {
  EXPECT_STREQ(probe_point_name(ProbePoint::Stimulus), "stimulus");
  EXPECT_STREQ(probe_point_name(ProbePoint::DecimatedOutput), "decimated_output");
  EXPECT_STREQ(stimulus_kind_name(StimulusKind::Recorded), "recorded");
}

}  // namespace
}  // namespace ascp::sensor
