// blackbox_tool — inspect, export and *replay* `.blackbox` crash images.
//
//   blackbox_tool inspect FILE
//       Print the CRC frame and the decoded crash summary: who died, when,
//       why, what the recorder retained, whether a checkpoint is embedded.
//       Exit 1 when the frame is unreadable or the CRC fails.
//   blackbox_tool export FILE [--json OUT] [--trace OUT]
//       Decode the image into machine-readable form: --json writes the full
//       structured dump (crash context, ring tail, spans, metric snapshot);
//       --trace writes a Chrome trace_event file of the causal spans (fleet
//       + channel tracks) with flight-recorder records as instants — load it
//       in Perfetto and read the incident's causal chain off the timeline.
//   blackbox_tool replay FILE [--verbose]
//       Crash forensics that *reproduce*: rebuild the channel from the
//       embedded identity (kind + seed + carried knobs), restore the embedded
//       last-good checkpoint (a corrupt one is detected and demoted to a cold
//       replay, exactly like the fleet supervisor), advance to the crash tick
//       and compare the streaming output hash against the recorded crash
//       fingerprint. Exit 0 iff the failure state was reproduced bit-exactly.
//
// A blackbox is only worth carrying if it replays; this tool is the proof.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "platform/engine/blackbox.hpp"
#include "platform/engine/fleet.hpp"
#include "sensor/stimulus_source.hpp"

using namespace ascp;
using namespace ascp::engine;

namespace {

const char* kind_name(std::uint32_t kind) {
  switch (static_cast<ChannelKind>(kind)) {
    case ChannelKind::GyroFull: return "GyroFull";
    case ChannelKind::GyroIdeal: return "GyroIdeal";
    case ChannelKind::Adxrs300: return "Adxrs300";
    case ChannelKind::Gyrostar: return "Gyrostar";
  }
  return "?";
}

std::string num(double v) {
  if (v != v || v > 1e300 || v < -1e300) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Owning BlackboxSpan → POD obs::Span view (name copied into the fixed
/// buffer, kv keys borrowed for the duration of the call) so the shared
/// span_trace_event renderer applies.
obs::Span to_span(const BlackboxSpan& s) {
  obs::Span out;
  out.trace_id = s.trace_id;
  out.span_id = s.span_id;
  out.parent_id = s.parent_id;
  std::strncpy(out.name, s.name.c_str(), sizeof out.name - 1);
  out.category = static_cast<obs::SpanCategory>(s.category);
  out.t_begin = s.t_begin;
  out.t_end = s.t_end;
  out.wall_us = s.wall_us;
  if (!s.k0.empty()) {
    out.k0 = s.k0.c_str();
    out.v0 = s.v0;
  }
  if (!s.k1.empty()) {
    out.k1 = s.k1.c_str();
    out.v1 = s.v1;
  }
  return out;
}

std::string record_json(const BlackboxFlightRecord& r) {
  std::string j = "{\"t\":" + num(r.t_sim);
  j += ",\"kind\":\"";
  j += obs::flight_kind_name(static_cast<obs::FlightKind>(r.kind));
  j += "\"";
  if (static_cast<obs::FlightKind>(r.kind) == obs::FlightKind::Event) {
    j += ",\"severity\":\"";
    j += obs::severity_name(static_cast<obs::EventSeverity>(r.severity));
    j += "\",\"category\":\"";
    j += obs::category_name(static_cast<obs::EventCategory>(r.category));
    j += "\"";
  } else if (static_cast<obs::FlightKind>(r.kind) == obs::FlightKind::ProbeSample) {
    j += ",\"point\":\"";
    j += sensor::probe_point_name(static_cast<sensor::ProbePoint>(r.category));
    j += "\",\"tick\":" + std::to_string(r.tick);
  }
  j += ",\"name\":\"" + obs::json_escape(r.name) + "\"";
  if (!r.detail.empty()) j += ",\"detail\":\"" + obs::json_escape(r.detail) + "\"";
  j += ",\"a\":" + num(r.a) + ",\"b\":" + num(r.b);
  if (!r.k0.empty()) j += ",\"" + obs::json_escape(r.k0) + "\":" + num(r.v0);
  if (!r.k1.empty()) j += ",\"" + obs::json_escape(r.k1) + "\":" + num(r.v1);
  j += "}";
  return j;
}

std::string span_json(const BlackboxSpan& s) {
  std::string j = "{\"trace_id\":\"" + std::to_string(s.trace_id) + "\"";
  j += ",\"span_id\":\"" + std::to_string(s.span_id) + "\"";
  j += ",\"parent_id\":\"" + std::to_string(s.parent_id) + "\"";
  j += ",\"name\":\"" + obs::json_escape(s.name) + "\"";
  j += ",\"category\":\"";
  j += obs::span_category_name(static_cast<obs::SpanCategory>(s.category));
  j += "\",\"t_begin\":" + num(s.t_begin) + ",\"t_end\":" + num(s.t_end);
  if (s.wall_us > 0.0) j += ",\"wall_us\":" + num(s.wall_us);
  if (!s.k0.empty()) j += ",\"" + obs::json_escape(s.k0) + "\":" + num(s.v0);
  if (!s.k1.empty()) j += ",\"" + obs::json_escape(s.k1) + "\":" + num(s.v1);
  j += "}";
  return j;
}

std::string image_json(const BlackboxImage& img) {
  std::string j = "{\n  \"meta\": {";
  j += "\"kind\":\"" + std::string(kind_name(img.kind)) + "\"";
  j += ",\"seed\":" + std::to_string(img.seed);
  j += ",\"channel\":" + std::to_string(img.channel_index);
  j += ",\"fleet_tick\":" + std::to_string(img.fleet_tick);
  j += ",\"reason\":\"" + obs::json_escape(img.reason) + "\"";
  j += ",\"dtcs\":" + std::to_string(img.dtcs);
  j += ",\"restarts\":" + std::to_string(img.restarts);
  j += ",\"health\":\"";
  j += channel_health_name(static_cast<ChannelHealth>(img.health));
  j += "\",\"rate_dps\":" + num(img.rate_dps) + ",\"temp_c\":" + num(img.temp_c);
  j += ",\"with_safety\":" + std::string(img.with_safety ? "true" : "false");
  j += ",\"with_faults\":" + std::string(img.with_faults ? "true" : "false");
  j += "},\n  \"crash\": {";
  j += "\"ticks\":" + std::to_string(img.crash_ticks);
  char hash[32];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(img.crash_hash));
  j += ",\"output_hash\":\"" + std::string(hash) + "\"";
  j += ",\"outputs\":" + std::to_string(img.crash_outputs);
  j += "},\n  \"checkpoint\": {";
  j += "\"tick\":" + std::to_string(img.checkpoint_tick);
  j += ",\"bytes\":" + std::to_string(img.checkpoint.size());
  j += "},\n  \"records\": [";
  for (std::size_t i = 0; i < img.records.size(); ++i)
    j += (i ? ",\n    " : "\n    ") + record_json(img.records[i]);
  j += "\n  ],\n  \"channel_spans\": [";
  for (std::size_t i = 0; i < img.channel_spans.size(); ++i)
    j += (i ? ",\n    " : "\n    ") + span_json(img.channel_spans[i]);
  j += "\n  ],\n  \"fleet_spans\": [";
  for (std::size_t i = 0; i < img.fleet_spans.size(); ++i)
    j += (i ? ",\n    " : "\n    ") + span_json(img.fleet_spans[i]);
  j += "\n  ],\n  \"metrics\": {\"counters\":{";
  for (std::size_t i = 0; i < img.counters.size(); ++i)
    j += (i ? "," : "") + ("\"" + obs::json_escape(img.counters[i].name) + "\":" +
                           num(img.counters[i].value));
  j += "},\"gauges\":{";
  for (std::size_t i = 0; i < img.gauges.size(); ++i)
    j += (i ? "," : "") + ("\"" + obs::json_escape(img.gauges[i].name) + "\":" +
                           num(img.gauges[i].value));
  j += "}}\n}\n";
  return j;
}

std::string image_trace(const BlackboxImage& img) {
  // tid layout: 200+cat channel spans, 300+cat fleet spans, 400 records.
  std::string j = "{\"traceEvents\":[\n";
  bool first = true;
  auto push = [&](const std::string& e) {
    if (!first) j += ",\n";
    first = false;
    j += e;
  };
  for (int c = 0; c < static_cast<int>(obs::kSpanCategoryCount); ++c) {
    const char* cn = obs::span_category_name(static_cast<obs::SpanCategory>(c));
    push("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(200 + c) + ",\"args\":{\"name\":\"channel spans:" +
         std::string(cn) + "\"}}");
    push("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(300 + c) + ",\"args\":{\"name\":\"fleet spans:" +
         std::string(cn) + "\"}}");
  }
  push("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":400,"
       "\"args\":{\"name\":\"flight recorder\"}}");
  for (const auto& s : img.channel_spans) push(obs::span_trace_event(to_span(s), 200));
  for (const auto& s : img.fleet_spans) push(obs::span_trace_event(to_span(s), 300));
  for (const auto& r : img.records) {
    std::string e = "{\"name\":\"" + obs::json_escape(r.name) + "\",\"ph\":\"i\",\"s\":\"t\"";
    e += ",\"pid\":1,\"tid\":400,\"ts\":" + num(r.t_sim * 1e6);
    e += ",\"cat\":\"";
    e += obs::flight_kind_name(static_cast<obs::FlightKind>(r.kind));
    e += "\",\"args\":{\"a\":" + num(r.a) + ",\"b\":" + num(r.b) + "}}";
    push(e);
  }
  j += "\n]}\n";
  return j;
}

bool write_file(const char* path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

int cmd_inspect(const char* path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = load_blackbox_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blackbox_tool: %s\n", e.what());
    return 2;
  }
  BlackboxInfo info;
  if (!inspect_blackbox(bytes, &info)) {
    std::printf("%s: not a blackbox (bad magic or truncated header, %zu bytes)\n", path,
                bytes.size());
    return 1;
  }
  std::printf("%s:\n", path);
  std::printf("  version:     %u\n", info.version);
  std::printf("  kind:        %u (%s)\n", info.kind, kind_name(info.kind));
  std::printf("  payload:     %llu bytes (file %zu)\n",
              static_cast<unsigned long long>(info.payload_len), bytes.size());
  std::printf("  crc32:       %08X  %s\n", info.crc, info.crc_ok ? "OK" : "MISMATCH");
  if (!info.crc_ok) return 1;

  try {
    const BlackboxImage img = decode_blackbox(bytes);
    std::printf("  channel:     #%llu seed %llu\n",
                static_cast<unsigned long long>(img.channel_index),
                static_cast<unsigned long long>(img.seed));
    std::printf("  fleet tick:  %lld  health %s  restarts %d  dtcs 0x%04X\n",
                static_cast<long long>(img.fleet_tick),
                channel_health_name(static_cast<ChannelHealth>(img.health)), img.restarts,
                img.dtcs);
    std::printf("  reason:      %s\n", img.reason.empty() ? "(none)" : img.reason.c_str());
    std::printf("  crash:       tick %lld, hash %016llx, %llu outputs\n",
                static_cast<long long>(img.crash_ticks),
                static_cast<unsigned long long>(img.crash_hash),
                static_cast<unsigned long long>(img.crash_outputs));
    std::printf("  checkpoint:  %zu bytes at tick %lld%s\n", img.checkpoint.size(),
                static_cast<long long>(img.checkpoint_tick),
                img.checkpoint.empty() ? " (none — cold replay)" : "");
    std::printf("  recorder:    %zu records\n", img.records.size());
    std::printf("  spans:       %zu channel, %zu fleet\n", img.channel_spans.size(),
                img.fleet_spans.size());
    std::printf("  metrics:     %zu counters, %zu gauges\n", img.counters.size(),
                img.gauges.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blackbox_tool: decode failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

int cmd_export(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
      json_path = argv[++i];
    else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
      trace_path = argv[++i];
  }
  if (!json_path && !trace_path) {
    std::fprintf(stderr, "blackbox_tool export: need --json OUT and/or --trace OUT\n");
    return 2;
  }
  BlackboxImage img;
  try {
    img = decode_blackbox(load_blackbox_file(argv[0]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blackbox_tool: %s\n", e.what());
    return 1;
  }
  if (json_path) {
    if (!write_file(json_path, image_json(img))) {
      std::fprintf(stderr, "blackbox_tool: cannot write %s\n", json_path);
      return 2;
    }
    std::printf("%s: JSON dump (%zu records, %zu+%zu spans)\n", json_path,
                img.records.size(), img.channel_spans.size(), img.fleet_spans.size());
  }
  if (trace_path) {
    if (!write_file(trace_path, image_trace(img))) {
      std::fprintf(stderr, "blackbox_tool: cannot write %s\n", trace_path);
      return 2;
    }
    std::printf("%s: Chrome trace (load in Perfetto / chrome://tracing)\n", trace_path);
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  bool verbose = false;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--verbose")) verbose = true;
  BlackboxImage img;
  try {
    img = decode_blackbox(load_blackbox_file(argv[0]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blackbox_tool: %s\n", e.what());
    return 1;
  }
  if (verbose)
    std::printf("replaying %s channel #%llu (seed %llu) to tick %lld …\n",
                kind_name(img.kind), static_cast<unsigned long long>(img.channel_index),
                static_cast<unsigned long long>(img.seed),
                static_cast<long long>(img.crash_ticks));
  BlackboxReplay rep;
  try {
    rep = replay_blackbox(img);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "blackbox_tool: replay failed: %s\n", e.what());
    return 1;
  }
  std::printf("checkpoint: %s\n", rep.checkpoint_corrupt ? "embedded image corrupt — cold replay"
                                  : rep.checkpoint_used  ? "restored from embedded image"
                                                         : "none — cold replay");
  std::printf("replayed:   tick %lld, hash %016llx, %llu outputs\n",
              static_cast<long long>(rep.replay_ticks),
              static_cast<unsigned long long>(rep.replay_hash),
              static_cast<unsigned long long>(rep.replay_outputs));
  std::printf("recorded:   tick %lld, hash %016llx, %llu outputs\n",
              static_cast<long long>(img.crash_ticks),
              static_cast<unsigned long long>(img.crash_hash),
              static_cast<unsigned long long>(img.crash_outputs));
  std::printf("%s\n", rep.hash_match ? "REPRODUCED: failure state matches bit-exactly"
                                     : "MISMATCH: replay diverged from the crash fingerprint");
  return rep.hash_match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && !std::strcmp(argv[1], "inspect")) return cmd_inspect(argv[2]);
  if (argc >= 3 && !std::strcmp(argv[1], "export")) return cmd_export(argc - 2, argv + 2);
  if (argc >= 3 && !std::strcmp(argv[1], "replay")) return cmd_replay(argc - 2, argv + 2);
  std::fprintf(stderr,
               "usage: blackbox_tool inspect FILE\n"
               "       blackbox_tool export FILE [--json OUT] [--trace OUT]\n"
               "       blackbox_tool replay FILE [--verbose]\n");
  return 2;
}
