// checkpoint_tool — capture, inspect and diff fleet checkpoint images.
//
//   checkpoint_tool capture SCENARIO OUT [--at F]
//       Run the conformance scenario to fraction F of its scripted duration
//       (default 0.5) and write the channel's checkpoint image to OUT.
//   checkpoint_tool inspect FILE
//       Print the CRC frame: version, channel kind, payload length, stored
//       CRC and whether the payload matches it. Exit 1 when the frame is
//       unreadable or the CRC fails — usable as a corruption probe in
//       scripts.
//   checkpoint_tool diff A B
//       Compare two images field-by-field and byte-by-byte; prints the first
//       payload divergence. Exit 0 identical, 1 different.
//
// Bit-exact restore means a checkpoint is a complete, portable description
// of a conditioning channel mid-run; this tool makes that artifact visible
// to humans and CI scripts.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "platform/engine/checkpoint.hpp"
#include "platform/engine/conditioning_channel.hpp"
#include "sensor/stimulus_source.hpp"

using namespace ascp;
using namespace ascp::engine;

namespace {

const char* kind_name(std::uint32_t kind) {
  switch (static_cast<ChannelKind>(kind)) {
    case ChannelKind::GyroFull: return "GyroFull";
    case ChannelKind::GyroIdeal: return "GyroIdeal";
    case ChannelKind::Adxrs300: return "Adxrs300";
    case ChannelKind::Gyrostar: return "Gyrostar";
  }
  return "?";
}

bool read_image(const char* path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// ---- embedded stimulus summary ---------------------------------------------
// Checkpoint format v2 places a stimulus-source summary at a fixed position
// in the CHAN section so this tool can report it without instantiating the
// platform: payload offsets 20 (kind, u32 LE) and 24 (cursor, i64 LE), i.e.
// image offsets 48/52 past the 28-byte frame header.

struct StimSummary {
  std::uint32_t kind = 0;
  std::int64_t cursor = -1;
};

bool read_stim_summary(const std::vector<std::uint8_t>& image, const CheckpointInfo& info,
                       StimSummary* out) {
  constexpr std::size_t kStimKindOff = kCheckpointHeaderSize + 20;
  constexpr std::size_t kStimCursorOff = kCheckpointHeaderSize + 24;
  if (info.version < 2 || image.size() < kStimCursorOff + 8) return false;
  if (std::memcmp(image.data() + kCheckpointHeaderSize, "CHAN", 4) != 0) return false;
  std::uint32_t k = 0;
  std::uint64_t c = 0;
  for (int i = 0; i < 4; ++i) k |= static_cast<std::uint32_t>(image[kStimKindOff + i]) << (8 * i);
  for (int i = 0; i < 8; ++i) c |= static_cast<std::uint64_t>(image[kStimCursorOff + i]) << (8 * i);
  out->kind = k;
  out->cursor = static_cast<std::int64_t>(c);
  return true;
}

int cmd_capture(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: checkpoint_tool capture SCENARIO OUT [--at F]\n");
    return 2;
  }
  double at = 0.5;
  for (int i = 2; i < argc; ++i)
    if (!std::strcmp(argv[i], "--at") && i + 1 < argc) at = std::atof(argv[++i]);

  conformance::Scenario scenario;
  try {
    scenario = conformance::load_scenario(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "checkpoint_tool: %s\n", e.what());
    return 2;
  }
  const ChannelConfig cfg = conformance::channel_config(scenario);
  ConditioningChannel ch(cfg);
  const long ticks = std::lround(scenario.duration_s * at * ch.base_rate_hz());
  ch.advance(ticks);
  const std::vector<std::uint8_t> image = ch.snapshot();

  std::ofstream out(argv[1], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "checkpoint_tool: cannot write %s\n", argv[1]);
    return 2;
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  std::printf("%s: %zu bytes at tick %ld (%.0f%% of %s)\n", argv[1], image.size(),
              ch.ticks_advanced(), at * 100.0, argv[0]);
  return 0;
}

int cmd_inspect(const char* path) {
  std::vector<std::uint8_t> image;
  if (!read_image(path, image)) {
    std::fprintf(stderr, "checkpoint_tool: cannot read %s\n", path);
    return 2;
  }
  CheckpointInfo info;
  if (!inspect_checkpoint(image, &info)) {
    std::printf("%s: not a checkpoint (bad magic or truncated header, %zu bytes)\n", path,
                image.size());
    return 1;
  }
  std::printf("%s:\n", path);
  std::printf("  version:     %u\n", info.version);
  std::printf("  kind:        %u (%s)\n", info.kind, kind_name(info.kind));
  std::printf("  payload:     %llu bytes (file %zu)\n",
              static_cast<unsigned long long>(info.payload_len), image.size());
  std::printf("  crc32:       %08X  %s\n", info.crc, info.crc_ok ? "OK" : "MISMATCH");
  StimSummary stim;
  if (read_stim_summary(image, info, &stim)) {
    std::printf("  stimulus:    %u (%s), cursor %lld\n", stim.kind,
                sensor::stimulus_kind_name(static_cast<sensor::StimulusKind>(stim.kind)),
                static_cast<long long>(stim.cursor));
  }
  return info.crc_ok ? 0 : 1;
}

int cmd_diff(const char* path_a, const char* path_b) {
  std::vector<std::uint8_t> a, b;
  if (!read_image(path_a, a) || !read_image(path_b, b)) {
    std::fprintf(stderr, "checkpoint_tool: cannot read input images\n");
    return 2;
  }
  CheckpointInfo ia, ib;
  const bool ok_a = inspect_checkpoint(a, &ia), ok_b = inspect_checkpoint(b, &ib);
  if (!ok_a || !ok_b) {
    std::printf("unframed input: %s%s\n", ok_a ? "" : path_a, ok_b ? "" : path_b);
    return 1;
  }
  bool same = true;
  if (ia.version != ib.version) {
    std::printf("version: %u vs %u\n", ia.version, ib.version);
    same = false;
  }
  if (ia.kind != ib.kind) {
    std::printf("kind: %s vs %s\n", kind_name(ia.kind), kind_name(ib.kind));
    same = false;
  }
  if (ia.payload_len != ib.payload_len) {
    std::printf("payload length: %llu vs %llu bytes\n",
                static_cast<unsigned long long>(ia.payload_len),
                static_cast<unsigned long long>(ib.payload_len));
    same = false;
  }
  StimSummary sa, sb;
  if (read_stim_summary(a, ia, &sa) && read_stim_summary(b, ib, &sb)) {
    if (sa.kind != sb.kind) {
      std::printf("stimulus kind: %s vs %s\n",
                  sensor::stimulus_kind_name(static_cast<sensor::StimulusKind>(sa.kind)),
                  sensor::stimulus_kind_name(static_cast<sensor::StimulusKind>(sb.kind)));
      same = false;
    }
    if (sa.cursor != sb.cursor)
      std::printf("stimulus cursor: %lld vs %lld\n", static_cast<long long>(sa.cursor),
                  static_cast<long long>(sb.cursor));
  }
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t first = n, differing = 0;
  for (std::size_t i = kCheckpointHeaderSize; i < n; ++i)
    if (a[i] != b[i]) {
      if (first == n) first = i;
      ++differing;
    }
  if (differing) {
    std::printf("payload: %zu differing byte(s), first at offset %zu (%02X vs %02X)\n",
                differing, first, a[first], b[first]);
    same = false;
  }
  std::printf("%s\n", same ? "identical" : "different");
  return same ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && !std::strcmp(argv[1], "capture")) return cmd_capture(argc - 2, argv + 2);
  if (argc == 3 && !std::strcmp(argv[1], "inspect")) return cmd_inspect(argv[2]);
  if (argc == 4 && !std::strcmp(argv[1], "diff")) return cmd_diff(argv[2], argv[3]);
  std::fprintf(stderr,
               "usage: checkpoint_tool capture SCENARIO OUT [--at F]\n"
               "       checkpoint_tool inspect FILE\n"
               "       checkpoint_tool diff A B\n");
  return 2;
}
