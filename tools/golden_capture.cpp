// golden_capture.cpp — capture bit-exact reference outputs (temporary tool).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/baselines.hpp"
#include "core/gyro_system.hpp"

using namespace ascp;

static std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

static std::uint64_t fnv1a(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (double d : v) {
    std::uint64_t u = bits(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

static void dump(const char* name, const std::vector<double>& v) {
  std::printf("%s n=%zu hash=0x%016" PRIx64 "\n", name, v.size(), fnv1a(v));
  for (std::size_t i = 0; i < v.size() && i < 4; ++i)
    std::printf("  [%zu] 0x%016" PRIx64 "\n", i, bits(v[i]));
  if (v.size() > 4) std::printf("  [last] 0x%016" PRIx64 "\n", bits(v.back()));
}

int main() {
  {  // Full fidelity, closed loop, two run() calls (warmup + capture).
    core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Full));
    sys.power_on(7);
    std::vector<double> out;
    sys.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.05, &out);
    sys.run(sensor::Profile::step(90.0, 0.01), sensor::Profile::ramp(25.0, 45.0, 0.0, 0.1),
            0.1, &out);
    dump("full_closed", out);
  }
  {  // Ideal fidelity.
    core::GyroSystem sys(core::default_gyro_system(core::Fidelity::Ideal));
    sys.power_on(3);
    std::vector<double> out;
    sys.run(sensor::Profile::sine(50.0, 20.0), sensor::Profile::constant(25.0), 0.1, &out);
    dump("ideal_closed", out);
  }
  {  // Full + safety supervisor + MCU monitor.
    auto cfg = core::default_gyro_system(core::Fidelity::Full);
    cfg.with_safety = true;
    cfg.with_mcu = true;
    core::GyroSystem sys(cfg);
    sys.power_on(11);
    std::vector<double> out;
    sys.run(sensor::Profile::constant(30.0), sensor::Profile::constant(35.0), 0.1, &out);
    dump("full_safety_mcu", out);
  }
  {  // Ideal, open loop (the future batched path).
    auto cfg = core::default_gyro_system(core::Fidelity::Ideal);
    cfg.sense.mode = core::SenseMode::OpenLoop;
    core::GyroSystem sys(cfg);
    sys.power_on(5);
    std::vector<double> out;
    sys.run(sensor::Profile::constant(40.0), sensor::Profile::constant(25.0), 0.1, &out);
    dump("ideal_open", out);
  }
  {  // ADXRS300 baseline, two run() calls with a tick count NOT divisible by
     // loop_div (0.0333 s * 1.92e6 = 63936 ticks ≡ 0 mod 8; use 1e-5 offset).
    core::AnalogGyroBaseline dut(core::adxrs300_like());
    dut.power_on(21);
    std::vector<double> out;
    dut.run(sensor::Profile::constant(0.0), sensor::Profile::constant(25.0), 0.033335, &out);
    dut.run(sensor::Profile::constant(100.0), sensor::Profile::constant(45.0), 0.05, &out);
    dump("adxrs300", out);
  }
  {  // Gyrostar baseline.
    core::AnalogGyroBaseline dut(core::gyrostar_like());
    dut.power_on(33);
    std::vector<double> out;
    dut.run(sensor::Profile::step(80.0, 0.02), sensor::Profile::constant(25.0), 0.06, &out);
    dump("gyrostar", out);
  }
  return 0;
}
