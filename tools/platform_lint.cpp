// platform_lint — static verification driver for the conditioning platform.
//
// Runs without simulating a single sample, so it belongs in CI next to the
// compiler: it proves map/firmware/range properties of the platform exactly
// as shipped, or of user-supplied artifacts.
//
//   platform_lint              lint the shipped platform: the live register
//                              map, every firmware image in the corpus, and
//                              the default (Table 1) DSP configuration
//   platform_lint --map FILE   lint a register-map description file
//   platform_lint --asm FILE   assemble FILE and lint the resulting image
//   platform_lint --events     check structured-event category coverage: every
//                              EventCategory enumerator must have a declared
//                              emitter on the fully assembled platform
//   -v / --verbose             also print info-level findings
//
// Exit status: 0 when no error-severity findings, 1 otherwise, 2 on usage
// or I/O problems.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/findings.hpp"
#include "analysis/firmware_corpus.hpp"
#include "analysis/firmware_lint.hpp"
#include "analysis/obs_lint.hpp"
#include "analysis/range_lint.hpp"
#include "analysis/regmap_lint.hpp"
#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/standard_faults.hpp"

using namespace ascp;
using namespace ascp::analysis;

namespace {

/// SFR addresses the platform's cache controller claims (CBANK..CSTAT).
std::vector<std::uint8_t> cache_ctrl_sfrs() { return {0xA1, 0xA2, 0xA3, 0xA4, 0xA5}; }

void print_report(const Report& report, bool verbose) {
  for (const auto& f : report.findings()) {
    if (f.severity == Severity::Info && !verbose) continue;
    std::printf("%s\n", f.format().c_str());
  }
}

int finish(const Report& report, bool verbose) {
  print_report(report, verbose);
  std::printf("platform_lint: %d error(s), %d warning(s), %zu finding(s)\n",
              report.errors(), report.warnings(), report.findings().size());
  return report.clean() ? 0 : 1;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int lint_map_file(const char* path, bool verbose) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "platform_lint: cannot read %s\n", path);
    return 2;
  }
  Report report;
  const RegMapSpec spec = parse_regmap(text, report);
  report.merge(check_regmap(spec));
  return finish(report, verbose);
}

int lint_asm_file(const char* path, bool verbose) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "platform_lint: cannot read %s\n", path);
    return 2;
  }
  Report report;
  mcu::AsmResult assembled;
  try {
    mcu::Assembler as;
    assembled = as.assemble(text);
  } catch (const mcu::AsmError& e) {
    report.add(Severity::Error, "asm", path, e.what());
    return finish(report, verbose);
  }

  // Check the image against the default platform map, like the corpus run.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  const RegMapSpec spec = platform_regmap(gyro.platform());

  FirmwareImage fw;
  fw.name = path;
  fw.base = assembled.entry;
  fw.entry = assembled.entry;
  fw.image.assign(assembled.image.begin() + assembled.entry, assembled.image.end());

  FirmwareLintOptions opt;
  opt.map = &spec;
  opt.extra_sfrs = cache_ctrl_sfrs();
  report.merge(check_firmware(fw, opt));
  return finish(report, verbose);
}

int lint_events(bool verbose) {
  // Assemble the platform at full observability fidelity — MCU, safety
  // supervisor and a fault campaign all attached — then verify that every
  // event-category enumerator has a component claiming to emit it. No
  // samples are simulated; declarations happen at attach time.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);

  ascp::obs::Observability obs;
  gyro.set_observability(obs.sink());

  safety::FaultCampaign campaign;
  safety::faults::add_register_bit_flip(campaign, gyro, /*at=*/1000);
  gyro.set_fault_campaign(&campaign);

  // Engine-category events come from the fleet runtime, which sits above
  // GyroSystem — attach a minimal supervised fleet so its declaration lands
  // in the same log. Construction alone declares; nothing advances.
  engine::FleetChannelSpec spec;
  spec.config.kind = engine::ChannelKind::Adxrs300;
  engine::FleetConfig fleet_cfg;
  fleet_cfg.events = &obs.events;
  engine::FleetSupervisor fleet({spec}, fleet_cfg);

  std::printf("== event-category coverage (%zu categories) ==\n",
              ascp::obs::kAllEventCategories.size());
  return finish(check_event_coverage(obs.events), verbose);
}

int lint_platform(bool verbose) {
  Report report;

  // [1] The live register map: GyroSystem with the MCU subsystem and the
  // safety DIAG block instantiated, snapshotted through the bridge.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  const RegMapSpec spec = platform_regmap(gyro.platform());
  std::printf("== register map: %zu block(s), %zu memory region(s) ==\n",
              spec.blocks.size(), spec.memories.size());
  report.merge(check_regmap(spec));

  // [2] Every shipped firmware image, against that map.
  const auto& map = gyro.platform().config().map;
  FirmwareLintOptions opt;
  opt.map = &spec;
  opt.extra_sfrs = cache_ctrl_sfrs();
  for (const auto& fw : corpus::shipped_firmware(map)) {
    std::printf("== firmware %s: %zu bytes @%04X ==\n", fw.name.c_str(),
                fw.image.size(), fw.base);
    report.merge(check_firmware(fw, opt));
  }

  // [3] Fixed-point ranges of the default (Table 1, SensorDynamics) DSP
  // configuration: prove every chain node stays inside its fx format.
  std::printf("== fixed-point ranges (Table 1 configuration) ==\n");
  report.merge(check_ranges(cfg.sense, cfg.drive, cfg.comp));

  return finish(report, verbose);
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool events = false;
  const char* map_file = nullptr;
  const char* asm_file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-v") || !std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--events")) {
      events = true;
    } else if (!std::strcmp(argv[i], "--map") && i + 1 < argc) {
      map_file = argv[++i];
    } else if (!std::strcmp(argv[i], "--asm") && i + 1 < argc) {
      asm_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: platform_lint [-v] [--map FILE | --asm FILE | --events]\n");
      return 2;
    }
  }
  if (map_file) return lint_map_file(map_file, verbose);
  if (asm_file) return lint_asm_file(asm_file, verbose);
  if (events) return lint_events(verbose);
  return lint_platform(verbose);
}
