// platform_lint — static verification driver for the conditioning platform.
//
// Runs without simulating a single sample, so it belongs in CI next to the
// compiler: it proves map/firmware/range properties of the platform exactly
// as shipped, or of user-supplied artifacts.
//
//   platform_lint              lint the shipped platform: the live register
//                              map, every firmware image in the corpus, the
//                              default (Table 1) DSP configuration, plus the
//                              static WCET / schedulability proof of the
//                              firmware corpus against the per-sample CPU
//                              budget (timing is always on for the full run)
//   platform_lint --map FILE   lint a register-map description file
//   platform_lint --asm FILE   assemble FILE and lint the resulting image
//   platform_lint --timing     with --asm: also run the WCET analyzer on the
//                              assembled image (unbounded loops become errors)
//   platform_lint --events     check structured-event category coverage: every
//                              EventCategory enumerator must have a declared
//                              emitter on the fully assembled platform
//   platform_lint --json FILE  additionally write every finding (info included)
//                              as JSON to FILE
//   -v / --verbose             also print info-level findings
//
// Exit status: 0 when no error-severity findings, 1 otherwise, 2 on usage
// or I/O problems.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "analysis/findings.hpp"
#include "analysis/firmware_corpus.hpp"
#include "analysis/firmware_lint.hpp"
#include "analysis/obs_lint.hpp"
#include "analysis/range_lint.hpp"
#include "analysis/regmap_lint.hpp"
#include "analysis/timing_lint.hpp"
#include "core/gyro_system.hpp"
#include "mcu/assembler.hpp"
#include "mcu/cache_ctrl.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/standard_faults.hpp"
#include "sensor/stimulus_source.hpp"

using namespace ascp;
using namespace ascp::analysis;

namespace {

/// SFR addresses the platform's cache controller claims (CBANK..CSTAT).
std::vector<std::uint8_t> cache_ctrl_sfrs() { return {0xA1, 0xA2, 0xA3, 0xA4, 0xA5}; }

void print_report(const Report& report, bool verbose) {
  for (const auto& f : report.findings()) {
    if (f.severity == Severity::Info && !verbose) continue;
    std::printf("%s\n", f.format().c_str());
  }
}

const char* g_json_path = nullptr;  ///< --json FILE (null = no export)

int finish(const Report& report, bool verbose) {
  print_report(report, verbose);
  std::printf("platform_lint: %d error(s), %d warning(s), %zu finding(s)\n",
              report.errors(), report.warnings(), report.findings().size());
  if (g_json_path) {
    std::ofstream out(g_json_path);
    if (!out) {
      std::fprintf(stderr, "platform_lint: cannot write %s\n", g_json_path);
      return 2;
    }
    out << to_json(report);
  }
  return report.clean() ? 0 : 1;
}

/// Timing model of the shipped platform: cache controller defaults and the
/// watchdog KICK register pair. The watchdog is present but not armed by
/// default, so the kick-interval bound stays informational (period 0).
TimingOptions platform_timing_options(const platform::BridgeMap& map) {
  TimingOptions t;
  const mcu::CacheConfig cache;
  t.cache_miss_penalty = static_cast<int>(cache.miss_penalty_cycles);
  t.cache_data_sfr = static_cast<std::uint8_t>(cache.sfr_base + 3);  // CDATA
  t.kick_addrs = {map.watchdog, static_cast<std::uint16_t>(map.watchdog + 1)};
  t.watchdog_period_cycles = 0;
  return t;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int lint_map_file(const char* path, bool verbose) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "platform_lint: cannot read %s\n", path);
    return 2;
  }
  Report report;
  const RegMapSpec spec = parse_regmap(text, report);
  report.merge(check_regmap(spec));
  return finish(report, verbose);
}

int lint_asm_file(const char* path, bool verbose, bool timing) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "platform_lint: cannot read %s\n", path);
    return 2;
  }
  Report report;
  mcu::AsmResult assembled;
  try {
    mcu::Assembler as;
    assembled = as.assemble(text);
  } catch (const mcu::AsmError& e) {
    report.add(Severity::Error, "asm", path, e.what());
    return finish(report, verbose);
  }

  // Check the image against the default platform map, like the corpus run.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  const RegMapSpec spec = platform_regmap(gyro.platform());

  FirmwareImage fw;
  fw.name = path;
  fw.base = assembled.entry;
  fw.entry = assembled.entry;
  fw.image.assign(assembled.image.begin() + assembled.entry, assembled.image.end());
  for (const auto& [addr, a] : assembled.loop_annots)
    fw.loop_annots[addr] = LoopAnnot{a.bound, a.wait};

  FirmwareLintOptions opt;
  opt.map = &spec;
  opt.extra_sfrs = cache_ctrl_sfrs();
  report.merge(check_firmware(fw, opt));
  if (timing)
    report.merge(analyze_wcet(fw, platform_timing_options(gyro.platform().config().map)).report);
  return finish(report, verbose);
}

int lint_events(bool verbose) {
  // Assemble the platform at full observability fidelity — MCU, safety
  // supervisor and a fault campaign all attached — then verify that every
  // event-category enumerator has a component claiming to emit it. No
  // samples are simulated; declarations happen at attach time.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);

  ascp::obs::Observability obs;
  gyro.set_observability(obs.sink());

  safety::FaultCampaign campaign;
  safety::faults::add_register_bit_flip(campaign, gyro, /*at=*/1000);
  gyro.set_fault_campaign(&campaign);

  // Probe-category events come from the stimulus/probe seam: attaching a
  // chain probe declares the emitter (again, no simulation needed).
  sensor::StimulusRecorder recorder(cfg.analog_fs);
  gyro.set_probe(&recorder);

  // Engine-category events come from the fleet runtime, which sits above
  // GyroSystem — attach a minimal supervised fleet so its declaration lands
  // in the same log. Construction alone declares; nothing advances.
  engine::FleetChannelSpec spec;
  spec.config.kind = engine::ChannelKind::Adxrs300;
  engine::FleetConfig fleet_cfg;
  fleet_cfg.events = &obs.events;
  engine::FleetSupervisor fleet({spec}, fleet_cfg);

  std::printf("== event-category coverage (%zu categories) ==\n",
              ascp::obs::kAllEventCategories.size());
  return finish(check_event_coverage(obs.events), verbose);
}

int lint_platform(bool verbose) {
  Report report;

  // [1] The live register map: GyroSystem with the MCU subsystem and the
  // safety DIAG block instantiated, snapshotted through the bridge.
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_mcu = true;
  cfg.with_safety = true;
  core::GyroSystem gyro(cfg);
  const RegMapSpec spec = platform_regmap(gyro.platform());
  std::printf("== register map: %zu block(s), %zu memory region(s) ==\n",
              spec.blocks.size(), spec.memories.size());
  report.merge(check_regmap(spec));

  // [2] Every shipped firmware image, against that map.
  const auto& map = gyro.platform().config().map;
  FirmwareLintOptions opt;
  opt.map = &spec;
  opt.extra_sfrs = cache_ctrl_sfrs();
  for (const auto& fw : corpus::shipped_firmware(map)) {
    std::printf("== firmware %s: %zu bytes @%04X ==\n", fw.name.c_str(),
                fw.image.size(), fw.base);
    report.merge(check_firmware(fw, opt));
  }

  // [3] Fixed-point ranges of the default (Table 1, SensorDynamics) DSP
  // configuration: prove every chain node stays inside its fx format.
  std::printf("== fixed-point ranges (Table 1 configuration) ==\n");
  report.merge(check_ranges(cfg.sense, cfg.drive, cfg.comp));

  // [4] Static WCET of the firmware corpus: every loop bounded (counted
  // idiom, annotation, or main-loop classification), routines composed
  // through calls, cache misses charged pessimistically.
  const TimingOptions topt = platform_timing_options(map);
  std::map<std::string, long> rounds;  // firmware -> worst main-loop round
  for (const auto& fw : corpus::shipped_firmware(map)) {
    std::printf("== timing %s ==\n", fw.name.c_str());
    WcetResult res = analyze_wcet(fw, topt);
    report.merge(res.report);
    for (const auto& f : res.functions)
      if (f.kind == FunctionWcet::Kind::MainLoop && f.bounded) {
        auto& r = rounds[fw.name];
        r = std::max(r, f.cycles);
      }
  }

  // [5] Schedulability: the MCU earns cycles_per_sample() machine cycles
  // per decimated output sample (paper §4.3: 20 MHz / 12 clocks). Each
  // event-serving monitor must fit one worst-case main-loop round into that
  // slice so it keeps pace with the sample stream. The telemetry monitor
  // paces itself with delay loops (its round exceeds any slice by design)
  // and the greeting app parks after two bytes — neither claims the budget.
  const double out_hz = gyro.output_rate_hz();
  const long budget = gyro.platform().cycles_per_sample(out_hz);
  std::printf("== schedulability: %ld cycle(s)/sample at %.1f Hz ==\n", budget, out_hz);
  {
    std::string graph = "pipeline task graph:";
    for (const auto& t : gyro.schedule_tasks())
      graph += " " + (t.name.empty() ? std::string("<anon>") : t.name) + "(/" +
               std::to_string(t.divider) +
               (t.phase ? "+" + std::to_string(t.phase) : "") + ")";
    report.add(Severity::Info, "timing", "scheduler", graph);
  }
  for (const char* name : {"monitor_rom", "diag_monitor", "watchdog_kicker", "rs485_node"}) {
    const auto it = rounds.find(name);
    if (it == rounds.end()) {
      report.add(Severity::Error, "timing", name,
                 "no bounded main-loop round — cannot prove the slice budget");
      continue;
    }
    ScheduleSpec s;
    s.name = std::string("mcu_slice/") + name;
    s.base_rate_hz = out_hz;
    s.cycles_per_tick = budget;
    s.tasks = {{name, 1, 0, it->second}};
    report.merge(check_schedule(s));
  }
  for (const char* name : {"telemetry_monitor", "greeting_app"})
    if (rounds.count(name))
      report.add(Severity::Info, "timing", name,
                 "self-paced (round WCET " + std::to_string(rounds.at(name)) +
                     " cycle(s)) — not held to the per-sample slice budget");

  return finish(report, verbose);
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool events = false;
  bool timing = false;
  const char* map_file = nullptr;
  const char* asm_file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-v") || !std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strcmp(argv[i], "--events")) {
      events = true;
    } else if (!std::strcmp(argv[i], "--timing")) {
      timing = true;
    } else if (!std::strcmp(argv[i], "--map") && i + 1 < argc) {
      map_file = argv[++i];
    } else if (!std::strcmp(argv[i], "--asm") && i + 1 < argc) {
      asm_file = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      g_json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: platform_lint [-v] [--timing] [--json FILE] "
                   "[--map FILE | --asm FILE | --events]\n");
      return 2;
    }
  }
  if (map_file) return lint_map_file(map_file, verbose);
  if (asm_file) return lint_asm_file(asm_file, verbose, timing);
  if (events) return lint_events(verbose);
  return lint_platform(verbose);  // timing is always on for the full run
}
