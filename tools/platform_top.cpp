// platform_top — live telemetry digest for the conditioning platform.
//
// Runs the standard gyro scenario (Full fidelity, safety supervisor, 8051
// monitor running the watchdog-kicker firmware) with the full observability
// stack attached, printing a one-line digest per simulated chunk and a final
// report: per-task scheduler timings, the MCU PC-histogram top-10 (with
// disassembly), ISR costs and the structured-event digest. The "top(1) for
// the simulated chip".
//
//   platform_top                 2 s of simulated time, default scenario
//   platform_top --seconds S     simulate S seconds
//   platform_top --smoke         short run (CI): 0.25 s, all outputs checked
//   platform_top --faults        attach the standard fault campaign
//   platform_top --trace FILE    write a Chrome trace_event JSON (Perfetto)
//   platform_top --json FILE     write the full JSON snapshot
//                                (BENCH_observability.json by default)
//
// Exit status: 0 on success, 1 when the run produced no output samples or an
// export failed, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/disasm.hpp"
#include "analysis/firmware_corpus.hpp"
#include "core/gyro_system.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "safety/standard_faults.hpp"
#include "sensor/environment.hpp"

using namespace ascp;

namespace {

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  bool smoke = false;
  bool faults = false;
  const char* trace_path = nullptr;
  const char* json_path = "BENCH_observability.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--faults")) {
      faults = true;
    } else if (!std::strcmp(argv[i], "--seconds") && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: platform_top [--smoke] [--faults] [--seconds S] "
                   "[--trace FILE] [--json FILE]\n");
      return 2;
    }
  }
  if (smoke) seconds = 0.25;
  if (seconds <= 0.0) {
    std::fprintf(stderr, "platform_top: --seconds must be > 0\n");
    return 2;
  }

  // ---- the standard scenario: Full gyro + supervisor + 8051 monitor -------
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_safety = true;
  cfg.with_mcu = true;
  core::GyroSystem gyro(cfg);
  gyro.platform().load_firmware(
      analysis::corpus::assemble_watchdog_kicker(gyro.platform().config().map).image);
  gyro.power_on(1);
  if (auto* wd = gyro.platform().watchdog()) {
    wd->write_reg(1, 30000);  // 1.5 ms of machine cycles at 20 MHz
    wd->write_reg(2, 1);
  }

  obs::Observability obs;
  gyro.set_observability(obs.sink());

  const double fs_dsp = cfg.analog_fs / cfg.adc_div;
  safety::FaultCampaign campaign;
  if (faults) {
    const long n = static_cast<long>(seconds * fs_dsp);
    safety::faults::add_register_bit_flip(campaign, gyro, /*at=*/n * 2 / 5);
    safety::faults::add_primary_adc_stuck(campaign, gyro, /*at=*/n * 3 / 5,
                                          /*code=*/1234, /*clear_after=*/n / 5);
    gyro.set_fault_campaign(&campaign);
  }

  // ---- chunked run with a one-line digest per chunk ------------------------
  const auto rate = sensor::Profile::constant(30.0);
  const auto temp = sensor::Profile::constant(25.0);
  const int chunks = smoke ? 2 : 8;
  std::vector<double> out;
  std::printf("platform_top: %.3f s simulated, %d chunk(s)%s\n", seconds, chunks,
              faults ? ", fault campaign attached" : "");
  for (int c = 0; c < chunks; ++c) {
    gyro.run(rate, temp, seconds / chunks, &out);
    const auto* sup = gyro.supervisor();
    std::printf(
        "  t=%7.3fs out=%6zu samples rate=%.4fV pll=%s state=%s dtc=0x%03X "
        "events=%llu sim/wall=%.2f\n",
        static_cast<double>(gyro.dsp_samples()) / fs_dsp, out.size(), gyro.last_output(),
        gyro.locked() ? "lock" : "....", safety::state_name(sup->state()), sup->dtcs(),
        static_cast<unsigned long long>(obs.events.total()), obs.tasks.sim_per_wall());
  }
  if (out.empty()) {
    std::fprintf(stderr, "platform_top: scenario produced no output samples\n");
    return 1;
  }

  // ---- final report --------------------------------------------------------
  const auto snap = obs.metrics.snapshot();
  std::fputs(obs::text_report(snap, &obs.events, &obs.tasks, &obs.mcu).c_str(), stdout);

  // Top-10 PCs again, with disassembly — the text report shows raw counts;
  // here the decoder names the instruction behind each hot address.
  std::vector<std::uint8_t> code(65536);
  for (std::size_t a = 0; a < code.size(); ++a)
    code[a] = gyro.platform().cpu().code_byte(static_cast<std::uint16_t>(a));
  std::printf("== mcu hot spots (disassembled) ==\n");
  for (const auto& p : obs.mcu.top_pcs(10)) {
    const auto insn = analysis::decode(code.data(), code.size(), 0, p.pc);
    std::printf("  0x%04X  %-20s %llu\n", p.pc, insn.text().c_str(),
                static_cast<unsigned long long>(p.count));
  }

  // ---- exports -------------------------------------------------------------
  int rc = 0;
  if (json_path) {
    const std::string js = obs::json_snapshot(snap, &obs.events, &obs.tasks, &obs.mcu);
    if (write_file(json_path, js)) {
      std::printf("platform_top: wrote %s (%zu bytes)\n", json_path, js.size());
    } else {
      std::fprintf(stderr, "platform_top: cannot write %s\n", json_path);
      rc = 1;
    }
  }
  if (trace_path) {
    const std::string tr = obs::chrome_trace_json(obs.tasks, &obs.events);
    if (write_file(trace_path, tr)) {
      std::printf("platform_top: wrote %s (%zu bytes, load in Perfetto)\n", trace_path,
                  tr.size());
    } else {
      std::fprintf(stderr, "platform_top: cannot write %s\n", trace_path);
      rc = 1;
    }
  }
  return rc;
}
