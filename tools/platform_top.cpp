// platform_top — live telemetry digest for the conditioning platform.
//
// Runs the standard gyro scenario (Full fidelity, safety supervisor, 8051
// monitor running the watchdog-kicker firmware) with the full observability
// stack attached, printing a one-line digest per simulated chunk and a final
// report: per-task scheduler timings, the MCU PC-histogram top-10 (with
// disassembly), ISR costs and the structured-event digest. The "top(1) for
// the simulated chip".
//
//   platform_top                 2 s of simulated time, default scenario
//   platform_top --seconds S     simulate S seconds
//   platform_top --smoke         short run (CI): 0.25 s, all outputs checked
//   platform_top --faults        attach the standard fault campaign
//   platform_top --trace FILE    write a Chrome trace_event JSON (Perfetto)
//   platform_top --json FILE     write the full JSON snapshot
//                                (BENCH_platform_top.json by default;
//                                BENCH_observability.json belongs to
//                                bench/perf_obs)
//   platform_top --fleet         supervised-fleet mode: run a small mixed
//                                fleet with flight recorders + causal spans
//                                armed and print a per-channel health table
//
// Exit status: 0 on success, 1 when the run produced no output samples or an
// export failed, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/disasm.hpp"
#include "analysis/firmware_corpus.hpp"
#include "core/gyro_system.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "platform/engine/fleet.hpp"
#include "safety/standard_faults.hpp"
#include "sensor/environment.hpp"

using namespace ascp;

namespace {

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

const char* kind_name(engine::ChannelKind k) {
  switch (k) {
    case engine::ChannelKind::GyroFull: return "GyroFull";
    case engine::ChannelKind::GyroIdeal: return "GyroIdeal";
    case engine::ChannelKind::Adxrs300: return "Adxrs300";
    case engine::ChannelKind::Gyrostar: return "Gyrostar";
  }
  return "?";
}

// ---- supervised-fleet mode: top(1) for a fleet, not a chip -----------------
// A small mixed fleet with flight recorders + causal spans armed, advanced a
// deterministic number of fleet ticks; the digest is a per-channel health
// table sourced from supervisor state, channel telemetry and span stats.
int run_fleet_mode(bool smoke) {
  obs::Observability fo;  // supervisor-side telemetry bundle
  engine::FleetConfig fc;
  fc.root_seed = 424242;
  fc.threads = 4;
  fc.tick_seconds = 0.002;
  fc.checkpoint_interval = 4;
  fc.flight_recorders = true;
  fc.metrics = &fo.metrics;
  fc.events = &fo.events;
  fc.spans = &fo.spans;

  const engine::ChannelKind kinds[] = {
      engine::ChannelKind::GyroIdeal, engine::ChannelKind::GyroIdeal,
      engine::ChannelKind::Adxrs300, engine::ChannelKind::Gyrostar};
  std::vector<engine::FleetChannelSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config.kind = kinds[i];
    specs[i].config.rate_dps = 10.0 + static_cast<double>(i) * 15.0;
    specs[i].config.queue_capacity = 4096;
    specs[i].priority = static_cast<int>(i % 2);
  }
  engine::FleetSupervisor fleet(std::move(specs), fc);
  const long ticks = smoke ? 25 : 100;
  fleet.run_ticks(ticks);

  std::printf("fleet: %zu channels, %ld ticks of %.3f ms, %u workers\n", fleet.size(),
              fleet.ticks_run(), fc.tick_seconds * 1e3, fc.threads);
  std::printf("%3s %-10s %-11s %8s %10s %10s %7s %6s %7s %8s\n", "ch", "kind", "health",
              "restarts", "ticks", "underruns", "drops", "dtcs", "spans", "records");
  bool healthy = true;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    auto& ch = fleet.channel(i);
    const auto* obs = ch.observability();
    const auto* rec = ch.flight_recorder();
    std::printf("%3zu %-10s %-11s %8d %10ld %10llu %7llu 0x%04X %7llu %8llu\n", i,
                kind_name(ch.config().kind), engine::channel_health_name(fleet.health(i)),
                fleet.restarts(i), fleet.ticks_done(i),
                static_cast<unsigned long long>(ch.stimulus()->underruns()),
                static_cast<unsigned long long>(ch.dropped_outputs()), fleet.fleet_dtcs(i),
                static_cast<unsigned long long>(obs ? obs->spans.total() : 0),
                static_cast<unsigned long long>(rec ? rec->total() : 0));
    healthy = healthy && fleet.health(i) == engine::ChannelHealth::Running &&
              fleet.ticks_done(i) == fleet.ticks_run();
  }

  const auto snap = fo.metrics.snapshot();
  std::printf("== fleet counters ==\n");
  for (const auto& [name, value] : snap.counters)
    if (name.rfind("fleet.", 0) == 0) std::printf("  %-28s %12.0f\n", name.c_str(), value);
  // Every fleet tick is one span; anything beyond that is a lifecycle edge
  // (stall_detect / incident / restart / catch_up / …).
  const std::uint64_t fleet_spans = fo.spans.count(obs::SpanCategory::Fleet);
  const std::uint64_t tick_spans = static_cast<std::uint64_t>(fleet.ticks_run());
  std::printf("== fleet spans ==\n");
  std::printf("  total %llu retained %zu (ticks %llu, lifecycle %llu) open %zu dropped %llu\n",
              static_cast<unsigned long long>(fo.spans.total()), fo.spans.size(),
              static_cast<unsigned long long>(tick_spans),
              static_cast<unsigned long long>(
                  fleet_spans > tick_spans ? fleet_spans - tick_spans : 0),
              fo.spans.open_depth(),
              static_cast<unsigned long long>(fo.spans.dropped() + fo.spans.open_dropped()));

  if (!healthy) {
    std::fprintf(stderr, "platform_top: fleet ended unhealthy\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  bool smoke = false;
  bool faults = false;
  bool fleet_mode = false;
  const char* trace_path = nullptr;
  const char* json_path = "BENCH_platform_top.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--faults")) {
      faults = true;
    } else if (!std::strcmp(argv[i], "--fleet")) {
      fleet_mode = true;
    } else if (!std::strcmp(argv[i], "--seconds") && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: platform_top [--smoke] [--faults] [--fleet] [--seconds S] "
                   "[--trace FILE] [--json FILE]\n");
      return 2;
    }
  }
  if (fleet_mode) return run_fleet_mode(smoke);
  if (smoke) seconds = 0.25;
  if (seconds <= 0.0) {
    std::fprintf(stderr, "platform_top: --seconds must be > 0\n");
    return 2;
  }

  // ---- the standard scenario: Full gyro + supervisor + 8051 monitor -------
  auto cfg = core::default_gyro_system(core::Fidelity::Full);
  cfg.with_safety = true;
  cfg.with_mcu = true;
  core::GyroSystem gyro(cfg);
  gyro.platform().load_firmware(
      analysis::corpus::assemble_watchdog_kicker(gyro.platform().config().map).image);
  gyro.power_on(1);
  if (auto* wd = gyro.platform().watchdog()) {
    wd->write_reg(1, 30000);  // 1.5 ms of machine cycles at 20 MHz
    wd->write_reg(2, 1);
  }

  obs::Observability obs;
  gyro.set_observability(obs.sink());

  const double fs_dsp = cfg.analog_fs / cfg.adc_div;
  safety::FaultCampaign campaign;
  if (faults) {
    const long n = static_cast<long>(seconds * fs_dsp);
    safety::faults::add_register_bit_flip(campaign, gyro, /*at=*/n * 2 / 5);
    safety::faults::add_primary_adc_stuck(campaign, gyro, /*at=*/n * 3 / 5,
                                          /*code=*/1234, /*clear_after=*/n / 5);
    gyro.set_fault_campaign(&campaign);
  }

  // ---- chunked run with a one-line digest per chunk ------------------------
  const auto rate = sensor::Profile::constant(30.0);
  const auto temp = sensor::Profile::constant(25.0);
  const int chunks = smoke ? 2 : 8;
  std::vector<double> out;
  std::printf("platform_top: %.3f s simulated, %d chunk(s)%s\n", seconds, chunks,
              faults ? ", fault campaign attached" : "");
  for (int c = 0; c < chunks; ++c) {
    gyro.run(rate, temp, seconds / chunks, &out);
    const auto* sup = gyro.supervisor();
    std::printf(
        "  t=%7.3fs out=%6zu samples rate=%.4fV pll=%s state=%s dtc=0x%03X "
        "events=%llu sim/wall=%.2f\n",
        static_cast<double>(gyro.dsp_samples()) / fs_dsp, out.size(), gyro.last_output(),
        gyro.locked() ? "lock" : "....", safety::state_name(sup->state()), sup->dtcs(),
        static_cast<unsigned long long>(obs.events.total()), obs.tasks.sim_per_wall());
  }
  if (out.empty()) {
    std::fprintf(stderr, "platform_top: scenario produced no output samples\n");
    return 1;
  }

  // ---- final report --------------------------------------------------------
  const auto snap = obs.metrics.snapshot();
  std::fputs(obs::text_report(snap, &obs.events, &obs.tasks, &obs.mcu).c_str(), stdout);

  // Top-10 PCs again, with disassembly — the text report shows raw counts;
  // here the decoder names the instruction behind each hot address.
  std::vector<std::uint8_t> code(65536);
  for (std::size_t a = 0; a < code.size(); ++a)
    code[a] = gyro.platform().cpu().code_byte(static_cast<std::uint16_t>(a));
  std::printf("== mcu hot spots (disassembled) ==\n");
  for (const auto& p : obs.mcu.top_pcs(10)) {
    const auto insn = analysis::decode(code.data(), code.size(), 0, p.pc);
    std::printf("  0x%04X  %-20s %llu\n", p.pc, insn.text().c_str(),
                static_cast<unsigned long long>(p.count));
  }

  // ---- exports -------------------------------------------------------------
  int rc = 0;
  if (json_path) {
    const std::string js = obs::json_snapshot(snap, &obs.events, &obs.tasks, &obs.mcu);
    if (write_file(json_path, js)) {
      std::printf("platform_top: wrote %s (%zu bytes)\n", json_path, js.size());
    } else {
      std::fprintf(stderr, "platform_top: cannot write %s\n", json_path);
      rc = 1;
    }
  }
  if (trace_path) {
    const std::string tr = obs::chrome_trace_json(obs.tasks, &obs.events);
    if (write_file(trace_path, tr)) {
      std::printf("platform_top: wrote %s (%zu bytes, load in Perfetto)\n", trace_path,
                  tr.size());
    } else {
      std::fprintf(stderr, "platform_top: cannot write %s\n", trace_path);
      rc = 1;
    }
  }
  return rc;
}
