// scenario_fuzz — differential conformance fuzzer driver.
//
// Modes:
//   --smoke [--seed N] [--runs N] [--emit-dir D] [--emit-every K]
//       Generate and run N randomized scenarios from the seed, checking the
//       full oracle on each. Every Kth scenario is written to D and replayed
//       from its file, asserting a bit-identical output hash. One batch of
//       equal-length scenarios is additionally executed through a
//       ChannelFarm on 1 and 4 threads, asserting thread-count invariance
//       and farm-vs-solo stream identity. Failing scenarios are auto-shrunk
//       to a minimal repro written next to the emit dir.
//   --replay FILE...
//       Re-run checked-in `.scenario` files (corpus or bug repros): oracle
//       plus a second run proving same-file ⇒ same-hash.
//   --corpus DIR
//       Replay every `*.scenario` under DIR (sorted), as the CI stage does.
//   --gen-corpus DIR
//       Regenerate the curated seed corpus into DIR (one file per catalogue
//       fault plus differential/ISS/burst coverage).
//
// Exit status: 0 = no violations, 1 = any oracle violation or replay
// divergence, 2 = usage/IO error.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "conformance/generator.hpp"
#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "conformance/shrink.hpp"
#include "platform/engine/channel_farm.hpp"

namespace fs = std::filesystem;
using namespace ascp;
using namespace ascp::conformance;

namespace {

int g_failures = 0;

void report(const Scenario& s, const ScenarioReport& rep, const char* context) {
  if (rep.ok()) return;
  ++g_failures;
  std::printf("FAIL [%s] seed=%llu class=%s:\n%s", context,
              static_cast<unsigned long long>(s.seed), class_name(s.cls), rep.summary().c_str());
}

/// Shrink a failing scenario against "any oracle violation" and write the
/// minimal repro.
void shrink_and_emit(const Scenario& s, const std::string& dir) {
  ShrinkStats st;
  const Scenario min_s = shrink_scenario(
      s, [](const Scenario& c) { return !run_scenario(c).ok(); }, /*max_attempts=*/60, &st);
  fs::create_directories(dir);
  const std::string path =
      dir + "/fail-seed" + std::to_string(min_s.seed) + ".scenario";
  save_scenario(path, min_s);
  std::printf("  shrunk (%d/%d edits kept) -> %s\n  replay: scenario_fuzz --replay %s\n",
              st.accepted, st.attempts, path.c_str(), path.c_str());
}

int run_replay_file(const std::string& path) {
  Scenario s;
  try {
    s = load_scenario(path);
  } catch (const std::exception& e) {
    std::printf("ERROR: %s\n", e.what());
    return 2;
  }
  const auto rep1 = run_scenario(s);
  report(s, rep1, "replay");
  const auto rep2 = run_scenario(s);
  if (rep2.output_hash != rep1.output_hash) {
    ++g_failures;
    std::printf("FAIL [replay] %s: non-deterministic — run hashes differ\n", path.c_str());
  }
  std::printf("%-52s %s  samples=%zu hash=%016llx\n", fs::path(path).filename().c_str(),
              rep1.ok() && rep2.output_hash == rep1.output_hash ? "ok " : "BAD", rep1.outputs,
              static_cast<unsigned long long>(rep1.output_hash));
  return 0;
}

/// Farm determinism stage: the same scenario batch through ChannelFarm with
/// 1 worker and 4 workers must produce identical per-channel hashes, each
/// matching the solo-run hash of that scenario.
void farm_stage(std::uint64_t seed) {
  GeneratorConfig gc;
  gc.w_invariant = 1.0;
  gc.w_diff = gc.w_fault = gc.w_iss = 0.0;
  constexpr int kBatch = 12;
  constexpr double kDur = 0.08;

  std::vector<Scenario> batch;
  std::vector<std::uint64_t> solo;
  std::vector<engine::ChannelConfig> specs;
  for (int i = 0; i < kBatch; ++i) {
    Scenario s = generate_scenario(seed ^ (0xFA12ull << 16) ^ static_cast<std::uint64_t>(i), gc);
    s.duration_s = kDur;  // equal length: one farm advance() covers the batch
    solo.push_back(run_scenario(s).output_hash);
    specs.push_back(channel_config(s));
    batch.push_back(std::move(s));
  }

  auto run_farm = [&](unsigned threads) {
    engine::FarmConfig fc;
    fc.reseed_channels = false;  // keep each scenario's own seed → solo-comparable
    fc.threads = threads;
    engine::ChannelFarm farm(specs, fc);
    farm.advance(kDur);
    std::vector<std::uint64_t> h;
    for (std::size_t i = 0; i < farm.size(); ++i) h.push_back(farm.channel(i).output_hash());
    return h;
  };
  const auto h1 = run_farm(1);
  const auto h4 = run_farm(4);
  int farm_failures = 0;
  for (int i = 0; i < kBatch; ++i) {
    if (h1[i] != h4[i]) {
      ++farm_failures;
      std::printf("FAIL [farm] channel %d: 1-thread and 4-thread hashes differ\n", i);
    }
    if (h1[i] != solo[i]) {
      ++farm_failures;
      std::printf("FAIL [farm] channel %d: farm stream differs from solo run (seed=%llu)\n", i,
                  static_cast<unsigned long long>(batch[static_cast<std::size_t>(i)].seed));
    }
  }
  g_failures += farm_failures;
  std::printf("farm: %d channels, 1==4 threads, farm==solo: %s\n", kBatch,
              farm_failures == 0 ? "ok" : "VIOLATIONS");
}

int run_smoke(std::uint64_t seed, int runs, const std::string& emit_dir, int emit_every) {
  std::map<std::string, int> by_class;
  std::map<std::string, int> by_fault;
  std::vector<std::pair<std::string, std::uint64_t>> emitted;  // path, hash

  for (int i = 0; i < runs; ++i) {
    const Scenario s = generate_scenario(seed + static_cast<std::uint64_t>(i) * 0x9E37ull);
    const auto rep = run_scenario(s);
    ++by_class[class_name(s.cls)];
    for (const auto& f : s.faults) ++by_fault[fault_kind_name(f.kind)];
    report(s, rep, "smoke");
    if (!rep.ok()) shrink_and_emit(s, emit_dir);

    if (emit_every > 0 && i % emit_every == 0) {
      fs::create_directories(emit_dir);
      const std::string path = emit_dir + "/smoke-" + std::to_string(i) + ".scenario";
      if (save_scenario(path, s)) emitted.emplace_back(path, rep.output_hash);
    }
  }

  // Replay every emitted file: file round-trip + rerun must reproduce the
  // recorded hash bit-exactly.
  int replayed = 0;
  for (const auto& [path, hash] : emitted) {
    const auto rep = run_scenario(load_scenario(path));
    if (rep.output_hash != hash) {
      ++g_failures;
      std::printf("FAIL [emit-replay] %s: hash differs from original run\n", path.c_str());
    }
    ++replayed;
  }

  farm_stage(seed);

  std::printf("scenario_fuzz: %d scenarios, %d violations, %d emitted+replayed\n", runs,
              g_failures, replayed);
  std::printf("  classes:");
  for (const auto& [k, v] : by_class) std::printf(" %s=%d", k.c_str(), v);
  std::printf("\n  faults:");
  for (const auto& [k, v] : by_fault) std::printf(" %s=%d", k.c_str(), v);
  std::printf("\n");
  return g_failures ? 1 : 0;
}

/// Curated corpus: every catalogue fault once, plus differential, ISS,
/// burst/vibration, open-loop batched, and wordlength-ablation coverage.
int gen_corpus(const std::string& dir) {
  fs::create_directories(dir);
  int written = 0;
  auto emit = [&](const char* name, const Scenario& s) {
    const std::string path = dir + "/" + name + ".scenario";
    if (!save_scenario(path, s)) {
      std::printf("ERROR: cannot write %s\n", path.c_str());
      return;
    }
    ++written;
  };

  // One scenario per catalogue fault, at catalogue-default magnitudes.
  static constexpr FaultKind kAll[] = {
      FaultKind::DriveElectrodeOpen, FaultKind::DriveElectrodeStuck, FaultKind::QuadratureStep,
      FaultKind::PrimaryAdcStuck,    FaultKind::SenseAdcStuckNull,   FaultKind::ReferenceDrift,
      FaultKind::PgaGainError,       FaultKind::ChargeAmpOpen,       FaultKind::NcoPhaseJump,
      FaultKind::RegisterBitFlip,    FaultKind::FirmwareHang,        FaultKind::EepromCalCorruption,
  };
  std::uint64_t seed = 7001;
  for (FaultKind k : kAll) {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Fault;
    s.full_fidelity = fault_requires_full(k);
    // The hang repro needs watchdog bite + MCU recovery + PLL reacquisition
    // (~0.21 s cold) after the 0.55 s injection point before the relock
    // oracle can see a settled lock.
    s.duration_s = k == FaultKind::FirmwareHang ? 1.2 : 0.85;
    s.rate.push_back({SegKind::Constant, s.duration_s, 30.0, 0, 0, 0});
    s.temp.push_back({SegKind::Constant, s.duration_s, 25.0, 0, 0, 0});
    s.faults.push_back({k, 132000, -1, 0.0});
    emit(fault_kind_name(k), s);
  }
  {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::DiffIdeal;
    s.duration_s = 0.15;
    s.rate.push_back({SegKind::Sine, s.duration_s, 80.0, 10.0, 5.0, 0});
    s.temp.push_back({SegKind::Ramp, s.duration_s, 20.0, 60.0, 0, 0});
    emit("diff_ideal_sine", s);
  }
  {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Iss;
    s.full_fidelity = false;
    s.duration_s = 0.15;
    s.rate.push_back({SegKind::Constant, s.duration_s, 45.0, 0, 0, 0});
    emit("iss_monitor", s);
  }
  {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Invariant;
    s.duration_s = 0.12;
    s.rate.push_back({SegKind::Chirp, s.duration_s, 60.0, 0.0, 2.0, 25.0});
    s.bursts.push_back({0.04, 0.02, 90.0, 400.0});  // vibration burst
    s.bursts.push_back({0.08, 0.01, 80.0, 0.0});    // half-sine shock
    emit("vibration_shock", s);
  }
  {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Invariant;
    s.open_loop = true;
    s.duration_s = 0.12;
    s.rate.push_back({SegKind::Sine, s.duration_s, 50.0, 0.0, 15.0, 0});
    emit("open_loop_batched", s);
  }
  {
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Invariant;
    s.datapath_bits = 18;
    s.output_bw_hz = 25.0;
    s.duration_s = 0.12;
    s.rate.push_back({SegKind::Ramp, s.duration_s, -120.0, 120.0, 0, 0});
    s.regs.push_back({false, 17, 96});  // sense PGA gain 6.0 via register
    emit("wordlength_regs", s);
  }
  {
    // Recorded-trace stimulus: the rate axis is a raw sample list replayed
    // zero-order-hold at f0, exercising the Trace segment evaluator and the
    // oracle's record→replay proof on a checked-in corpus entry.
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::Invariant;
    s.duration_s = 0.12;
    Segment tr{SegKind::Trace, s.duration_s, 0, 0, 800.0, 0};
    double v = -40.0;
    for (int i = 0; i < 96; ++i) {
      v += (i % 7 < 4) ? 3.5 : -4.25;  // deterministic jagged walk
      tr.samples.push_back(v);
    }
    s.rate.push_back(tr);
    s.temp.push_back({SegKind::Ramp, s.duration_s, 15.0, 55.0, 0, 0});
    emit("trace_segment_replay", s);
  }
  {
    // Damped-oscillation trace driven through the Full-vs-Ideal differential
    // oracle: step-like ZOH edges must not open a fidelity gap.
    Scenario s;
    s.seed = seed++;
    s.cls = ScenarioClass::DiffIdeal;
    s.duration_s = 0.15;
    Segment tr{SegKind::Trace, s.duration_s, 0, 0, 400.0, 0};
    for (int i = 0; i < 60; ++i)
      tr.samples.push_back(70.0 * std::sin(0.35 * i) * std::exp(-0.02 * i));
    s.rate.push_back(tr);
    s.temp.push_back({SegKind::Constant, s.duration_s, 25.0, 0, 0, 0});
    emit("trace_diff_ideal", s);
  }
  std::printf("gen-corpus: wrote %d scenarios to %s\n", written, dir.c_str());
  return 0;
}

int usage() {
  std::printf(
      "usage: scenario_fuzz --smoke [--seed N] [--runs N] [--emit-dir D] [--emit-every K]\n"
      "       scenario_fuzz --replay FILE...\n"
      "       scenario_fuzz --corpus DIR\n"
      "       scenario_fuzz --gen-corpus DIR\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 2026;
  int runs = 200;
  std::string emit_dir = "fuzz_out";
  int emit_every = 10;
  std::string mode;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--smoke" || a == "--gen-corpus" || a == "--corpus" || a == "--replay")
      mode = a;
    else if (a == "--seed") {
      if (const char* v = next()) seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--runs") {
      if (const char* v = next()) runs = std::atoi(v);
    } else if (a == "--emit-dir") {
      if (const char* v = next()) emit_dir = v;
    } else if (a == "--emit-every") {
      if (const char* v = next()) emit_every = std::atoi(v);
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a);
    } else {
      return usage();
    }
  }

  try {
    if (mode == "--smoke") return run_smoke(seed, runs, emit_dir, emit_every);
    if (mode == "--gen-corpus") {
      if (files.size() != 1) return usage();
      return gen_corpus(files[0]);
    }
    if (mode == "--corpus") {
      if (files.size() != 1) return usage();
      std::vector<std::string> paths;
      for (const auto& e : fs::directory_iterator(files[0]))
        if (e.path().extension() == ".scenario") paths.push_back(e.path().string());
      std::sort(paths.begin(), paths.end());
      if (paths.empty()) {
        std::printf("ERROR: no .scenario files under %s\n", files[0].c_str());
        return 2;
      }
      for (const auto& p : paths)
        if (int rc = run_replay_file(p)) return rc;
      std::printf("corpus: %zu scenarios, %d violations\n", paths.size(), g_failures);
      return g_failures ? 1 : 0;
    }
    if (mode == "--replay") {
      if (files.empty()) return usage();
      for (const auto& p : files)
        if (int rc = run_replay_file(p)) return rc;
      return g_failures ? 1 : 0;
    }
  } catch (const std::exception& e) {
    std::printf("ERROR: %s\n", e.what());
    return 2;
  }
  return usage();
}
