// stimulus_tool — record, inspect, replay and diff `.strace` stimulus traces.
//
//   stimulus_tool record SCENARIO OUT.strace [--decimate N]
//       Run the conformance scenario with a StimulusRecorder probe attached
//       and write the captured stimulus (rate + temperature per analog tick)
//       to OUT.strace. --decimate keeps every Nth tick (default 1 — the
//       bit-exact setting for replay).
//   stimulus_tool inspect FILE.strace
//       Print the frame header: version, interpolation mode, sample rate,
//       sample count, CRC status and a value summary. Exit 1 when the frame
//       is unreadable or the CRC fails.
//   stimulus_tool replay SCENARIO FILE.strace
//       Re-run the scenario with its synthetic stimulus replaced by the
//       recorded trace and print the decimated-output FNV-1a hash alongside
//       the synthetic run's hash. Exit 0 when they match bit-exactly.
//   stimulus_tool diff A.strace B.strace
//       Compare two traces header-by-header and sample-by-sample; prints the
//       first divergence. Exit 0 identical, 1 different.
//
// Together with checkpoint_tool this closes the reproducibility loop: a
// field capture replayed through RecordedSource is bit-identical to the
// synthetic run it was recorded from, and a mid-replay checkpoint resumes
// at the exact trace cursor.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "conformance/oracle.hpp"
#include "conformance/scenario.hpp"
#include "platform/engine/conditioning_channel.hpp"
#include "sensor/stimulus_source.hpp"

using namespace ascp;
using namespace ascp::sensor;

namespace {

int cmd_record(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: stimulus_tool record SCENARIO OUT.strace [--decimate N]\n");
    return 2;
  }
  std::size_t decimate = 1;
  for (int i = 2; i < argc; ++i)
    if (!std::strcmp(argv[i], "--decimate") && i + 1 < argc)
      decimate = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));

  conformance::Scenario scenario;
  try {
    scenario = conformance::load_scenario(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stimulus_tool: %s\n", e.what());
    return 2;
  }
  auto cfg = conformance::channel_config(scenario);
  // Base rate is only known once the channel exists; build a throwaway first.
  const double base_rate_hz = engine::ConditioningChannel(cfg).base_rate_hz();
  StimulusRecorder recorder(base_rate_hz / static_cast<double>(decimate == 0 ? 1 : decimate),
                            decimate);
  cfg.probe = &recorder;
  engine::ConditioningChannel ch(cfg);
  ch.advance(std::llround(scenario.duration_s * ch.base_rate_hz()));

  if (!save_strace(argv[1], recorder.trace())) {
    std::fprintf(stderr, "stimulus_tool: cannot write %s\n", argv[1]);
    return 2;
  }
  std::printf("%s: %zu samples at %.6g Hz (hash %016llX)\n", argv[1],
              recorder.trace().samples.size(), recorder.trace().sample_rate_hz,
              static_cast<unsigned long long>(ch.output_hash()));
  return 0;
}

int cmd_inspect(const char* path) {
  std::vector<std::uint8_t> image;
  {
    std::FILE* f = std::fopen(path, "rb");
    if (!f) {
      std::fprintf(stderr, "stimulus_tool: cannot read %s\n", path);
      return 2;
    }
    std::fseek(f, 0, SEEK_END);
    const long n = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    image.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    if (!image.empty() && std::fread(image.data(), 1, image.size(), f) != image.size()) {
      std::fclose(f);
      std::fprintf(stderr, "stimulus_tool: short read on %s\n", path);
      return 2;
    }
    std::fclose(f);
  }
  StraceInfo info;
  if (!inspect_strace(image, &info)) {
    std::printf("%s: not a stimulus trace (bad magic or truncated header, %zu bytes)\n", path,
                image.size());
    return 1;
  }
  std::printf("%s:\n", path);
  std::printf("  version:     %u\n", info.version);
  std::printf("  interp:      %s\n", info.interp == 0 ? "hold" : "linear");
  std::printf("  sample rate: %.6g Hz\n", info.sample_rate_hz);
  std::printf("  samples:     %llu (%.6g s)\n", static_cast<unsigned long long>(info.count),
              info.sample_rate_hz > 0.0
                  ? static_cast<double>(info.count) / info.sample_rate_hz
                  : 0.0);
  std::printf("  crc32:       %08X  %s\n", info.crc, info.crc_ok ? "OK" : "MISMATCH");
  if (info.crc_ok) {
    try {
      const StimulusTrace trace = decode_strace(image);
      double rmin = 0.0, rmax = 0.0;
      if (!trace.samples.empty()) rmin = rmax = trace.samples.front().rate_dps;
      for (const auto& s : trace.samples) {
        rmin = std::min(rmin, s.rate_dps);
        rmax = std::max(rmax, s.rate_dps);
      }
      std::printf("  rate range:  [%.6g, %.6g] dps\n", rmin, rmax);
    } catch (const std::exception& e) {
      std::printf("  decode:      %s\n", e.what());
      return 1;
    }
  }
  return info.crc_ok ? 0 : 1;
}

int cmd_replay(const char* scenario_path, const char* trace_path) {
  conformance::Scenario scenario;
  std::shared_ptr<StimulusTrace> trace;
  try {
    scenario = conformance::load_scenario(scenario_path);
    trace = std::make_shared<StimulusTrace>(load_strace(trace_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stimulus_tool: %s\n", e.what());
    return 2;
  }

  auto synth_cfg = conformance::channel_config(scenario);
  engine::ConditioningChannel synth(synth_cfg);
  synth.advance(std::llround(scenario.duration_s * synth.base_rate_hz()));

  auto replay_cfg = conformance::channel_config(scenario);
  replay_cfg.stimulus_factory = [trace](double base_rate_hz) {
    return std::make_unique<RecordedSource>(trace, base_rate_hz);
  };
  engine::ConditioningChannel replay(replay_cfg);
  replay.advance(std::llround(scenario.duration_s * replay.base_rate_hz()));

  const bool match = replay.output_hash() == synth.output_hash();
  std::printf("synthetic %016llX\nreplayed  %016llX\n%s\n",
              static_cast<unsigned long long>(synth.output_hash()),
              static_cast<unsigned long long>(replay.output_hash()),
              match ? "bit-exact" : "DIVERGED");
  return match ? 0 : 1;
}

int cmd_diff(const char* path_a, const char* path_b) {
  StimulusTrace a, b;
  try {
    a = load_strace(path_a);
    b = load_strace(path_b);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stimulus_tool: %s\n", e.what());
    return 2;
  }
  bool same = true;
  if (a.sample_rate_hz != b.sample_rate_hz) {
    std::printf("sample rate: %.17g vs %.17g Hz\n", a.sample_rate_hz, b.sample_rate_hz);
    same = false;
  }
  if (a.interp != b.interp) {
    std::printf("interp: %u vs %u\n", static_cast<unsigned>(a.interp),
                static_cast<unsigned>(b.interp));
    same = false;
  }
  if (a.samples.size() != b.samples.size()) {
    std::printf("sample count: %zu vs %zu\n", a.samples.size(), b.samples.size());
    same = false;
  }
  const std::size_t n = std::min(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t ra, rb, ta, tb;
    std::memcpy(&ra, &a.samples[i].rate_dps, 8);
    std::memcpy(&rb, &b.samples[i].rate_dps, 8);
    std::memcpy(&ta, &a.samples[i].temp_c, 8);
    std::memcpy(&tb, &b.samples[i].temp_c, 8);
    if (ra != rb || ta != tb) {
      std::printf("first differing sample at %zu: (%.17g, %.17g) vs (%.17g, %.17g)\n", i,
                  a.samples[i].rate_dps, a.samples[i].temp_c, b.samples[i].rate_dps,
                  b.samples[i].temp_c);
      same = false;
      break;
    }
  }
  std::printf("%s\n", same ? "identical" : "different");
  return same ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && !std::strcmp(argv[1], "record")) return cmd_record(argc - 2, argv + 2);
  if (argc == 3 && !std::strcmp(argv[1], "inspect")) return cmd_inspect(argv[2]);
  if (argc == 4 && !std::strcmp(argv[1], "replay")) return cmd_replay(argv[2], argv[3]);
  if (argc == 4 && !std::strcmp(argv[1], "diff")) return cmd_diff(argv[2], argv[3]);
  std::fprintf(stderr,
               "usage: stimulus_tool record SCENARIO OUT.strace [--decimate N]\n"
               "       stimulus_tool inspect FILE.strace\n"
               "       stimulus_tool replay SCENARIO FILE.strace\n"
               "       stimulus_tool diff A.strace B.strace\n");
  return 2;
}
